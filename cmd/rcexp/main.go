// Command rcexp regenerates the paper's tables and figures.
//
// Usage:
//
//	rcexp [-exp table1|fig7|fig8|fig9|fig10|fig11|fig12|fig13|models|combined|scenarios|all]
//	      [-quick] [-bench name] [-workers n] [-stats] [-progress]
//	      [-profile p1,p2|all] [-seeds 0,1,2|0-9]
//	      [-cpuprofile FILE] [-memprofile FILE]
//
// -quick restricts the suite to three representative benchmarks; -bench
// restricts it to one — a paper benchmark ("grep") or a generated
// workload ("gen/connect-heavy/42"). -workers bounds the simulation
// worker pool (0 uses all CPUs, 1 disables parallelism); tables are
// identical at any setting. -profile and -seeds configure the scenarios
// experiment (generated workloads swept across every register backend):
// comma-separated profile names (or "all") and comma-separated seeds
// (ranges like 0-9 work); setting either implies -exp scenarios.
// Output is aligned ASCII, one table per figure (or per benchmark for the
// per-benchmark figures 8 and 9). -stats skips the tables and instead
// emits a JSON array of per-point cycle-ledger statistics (stall
// breakdown, issue-slot histogram, map-table telemetry) over the golden
// benchmark×config grid, verifying the ledger invariant on every point.
// -cpuprofile / -memprofile write runtime/pprof profiles of the sweep
// itself (the simulator's host cost, not simulated cycles) for `go tool
// pprof`; see DESIGN.md §10 for a profiling case study.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"regconn/internal/bench"
	"regconn/internal/exp"
	"regconn/internal/workload"
)

// scenarioConfig parses the -profile and -seeds flags. Profiles are a
// comma-separated list validated against the registry ("" or "all" =
// every profile); seeds are comma-separated integers with inclusive
// ranges ("0,5,8-11").
func scenarioConfig(profile, seeds string) (exp.ScenarioConfig, error) {
	var cfg exp.ScenarioConfig
	if profile != "" && profile != "all" {
		for _, p := range strings.Split(profile, ",") {
			p = strings.TrimSpace(p)
			if _, err := workload.ProfileByName(p); err != nil {
				return cfg, err
			}
			cfg.Profiles = append(cfg.Profiles, p)
		}
	}
	if seeds != "" {
		for _, part := range strings.Split(seeds, ",") {
			part = strings.TrimSpace(part)
			if lo, hi, ok := strings.Cut(part, "-"); ok && lo != "" {
				a, err1 := strconv.ParseInt(lo, 10, 64)
				b, err2 := strconv.ParseInt(hi, 10, 64)
				if err1 != nil || err2 != nil || b < a {
					return cfg, fmt.Errorf("bad -seeds range %q", part)
				}
				if b-a >= 1<<16 {
					return cfg, fmt.Errorf("-seeds range %q too large", part)
				}
				for s := a; s <= b; s++ {
					cfg.Seeds = append(cfg.Seeds, s)
				}
				continue
			}
			s, err := strconv.ParseInt(part, 10, 64)
			if err != nil {
				return cfg, fmt.Errorf("bad -seeds entry %q", part)
			}
			cfg.Seeds = append(cfg.Seeds, s)
		}
	}
	return cfg, nil
}

func main() {
	var (
		expID      = flag.String("exp", "all", "experiment id or 'all'")
		quick      = flag.Bool("quick", false, "reduced three-benchmark suite")
		bmName     = flag.String("bench", "", "restrict to one benchmark")
		format     = flag.String("format", "text", "output format: text or csv")
		workers    = flag.Int("workers", 0, "simulation worker pool size (0 = all CPUs)")
		stats      = flag.Bool("stats", false, "emit per-point cycle-ledger statistics as JSON")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the sweep to FILE")
		memprofile = flag.String("memprofile", "", "write a heap profile at exit to FILE")
		progress   = flag.Bool("progress", false, "report warm-pass sweep progress on stderr")
		profile    = flag.String("profile", "", "scenario profiles, comma-separated or 'all' (implies -exp scenarios)")
		seeds      = flag.String("seeds", "", "scenario seeds, comma-separated with ranges, e.g. 0,1,2 or 0-9 (implies -exp scenarios)")
	)
	flag.Parse()

	if *format != "text" && *format != "csv" {
		fatal(fmt.Errorf("unknown -format %q (want text or csv)", *format))
	}
	scen, err := scenarioConfig(*profile, *seeds)
	if err != nil {
		fatal(err)
	}
	id := *expID
	if (*profile != "" || *seeds != "") && id == "all" {
		id = "scenarios"
	}
	stop, err := startCPUProfile(*cpuprofile)
	if err != nil {
		fatal(err)
	}
	err = run(id, *quick, *bmName, *format, *workers, *stats, *progress, scen)
	stop()
	if merr := writeMemProfile(*memprofile); merr != nil && err == nil {
		err = merr
	}
	if err != nil {
		fatal(err)
	}
}

func run(expID string, quick bool, bmName, format string, workers int, stats, progress bool, scen exp.ScenarioConfig) error {
	r := exp.NewRunner()
	if quick {
		r = exp.NewQuickRunner()
	}
	r.Workers = workers
	if bmName != "" {
		bm, err := workload.ByName(bmName)
		if err != nil {
			return err
		}
		r.Benchmarks = []bench.Benchmark{bm}
	}
	if progress {
		// The hook fires from worker goroutines; stderr writes are
		// atomic enough for a one-line-per-point progress feed.
		r.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "rcexp: %d/%d points\n", done, total)
		}
	}

	if stats {
		pts, err := r.StatsReport()
		if err != nil {
			return err
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(pts)
	}

	ids := []string{expID}
	if expID == "all" {
		ids = exp.Experiments()
	}
	for _, id := range ids {
		var tables []*exp.Table
		var err error
		if id == "scenarios" {
			// The scenarios experiment is the one with its own axes: the
			// -profile/-seeds configuration replaces the default sweep.
			var t *exp.Table
			t, err = r.Scenarios(scen)
			tables = []*exp.Table{t}
		} else {
			tables, err = r.Generate(id)
		}
		if err != nil {
			return err
		}
		for _, t := range tables {
			if format == "csv" {
				fmt.Printf("# %s — %s\n%s\n", t.ID, t.Title, t.CSV())
			} else {
				fmt.Println(t.Format())
			}
		}
	}
	return nil
}

// startCPUProfile begins a runtime/pprof CPU profile and returns the stop
// function (a no-op when path is empty).
func startCPUProfile(path string) (func(), error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// writeMemProfile dumps a post-GC heap profile (no-op when path is empty).
func writeMemProfile(path string) error {
	if path == "" {
		return nil
	}
	runtime.GC()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return pprof.WriteHeapProfile(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rcexp:", err)
	os.Exit(1)
}
