// Command rcbench measures simulator performance and writes a small JSON
// report for tracking figure-regeneration cost across changes.
//
// Usage:
//
//	rcbench [-o BENCH_sim.json] [-workers n] [-quick]
//	        [-cpuprofile FILE] [-memprofile FILE]
//
// -cpuprofile / -memprofile write runtime/pprof profiles of the benchmark
// run for `go tool pprof` (see DESIGN.md §10).
//
// It times the two heaviest single figures (7 and 10) and the full
// experiment suite on fresh runners (no memoized results), and measures
// raw simulation throughput in machine instructions per second. -quick
// uses the reduced three-benchmark suite for everything. The report also
// embeds the cycle-ledger statistics of the throughput benchmark at the
// paper's center configuration (stall breakdown, issue-slot histogram,
// map-table telemetry) so future changes can diff the attribution.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"regconn"
	"regconn/internal/exp"
	"regconn/internal/machine"
)

type report struct {
	GoMaxProcs      int     `json:"gomaxprocs"`
	Workers         int     `json:"workers"`
	Quick           bool    `json:"quick_suite"`
	Fig7Ms          float64 `json:"fig7_ms"`
	Fig10Ms         float64 `json:"fig10_ms"`
	FullSuiteMs     float64 `json:"full_suite_ms"`
	SimInstrsPerSec float64 `json:"sim_instrs_per_sec"`

	// CenterBench/CenterStats pin the cycle ledger of the throughput
	// benchmark at the center configuration.
	CenterBench string        `json:"center_bench"`
	CenterStats machine.Stats `json:"center_stats"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rcbench:", err)
		os.Exit(1)
	}
}

// run carries the whole benchmark so the profile-writing defers fire on
// every exit path — a fatal os.Exit in main would skip them and leave a
// truncated (unreadable) pprof file behind.
func run() (err error) {
	var (
		out        = flag.String("o", "BENCH_sim.json", "output JSON path (- for stdout)")
		workers    = flag.Int("workers", 0, "simulation worker pool size (0 = all CPUs)")
		quick      = flag.Bool("quick", false, "reduced three-benchmark suite")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to FILE")
		memprofile = flag.String("memprofile", "", "write a heap profile at exit to FILE")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, cerr := os.Create(*cpuprofile)
		if cerr != nil {
			return cerr
		}
		if cerr := pprof.StartCPUProfile(f); cerr != nil {
			f.Close()
			return cerr
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			runtime.GC()
			f, merr := os.Create(*memprofile)
			if merr != nil {
				if err == nil {
					err = merr
				}
				return
			}
			defer f.Close()
			if merr := pprof.WriteHeapProfile(f); merr != nil && err == nil {
				err = merr
			}
		}()
	}

	newRunner := func() *exp.Runner {
		r := exp.NewRunner()
		if *quick {
			r = exp.NewQuickRunner()
		}
		r.Workers = *workers
		return r
	}
	timeIDs := func(ids ...string) (float64, error) {
		r := newRunner()
		start := time.Now()
		for _, id := range ids {
			if _, err := r.Generate(id); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(start).Microseconds()) / 1000, nil
	}

	rep := report{GoMaxProcs: runtime.GOMAXPROCS(0), Workers: *workers, Quick: *quick}
	if rep.Fig7Ms, err = timeIDs("fig7"); err != nil {
		return err
	}
	if rep.Fig10Ms, err = timeIDs("fig10"); err != nil {
		return err
	}
	if rep.FullSuiteMs, err = timeIDs(exp.Experiments()...); err != nil {
		return err
	}

	// Raw simulation speed on one benchmark at the paper's center
	// configuration, the quantity that bounds full-suite experiment time.
	tr := newRunner()
	bm := tr.Benchmarks[0]
	arch := regconn.Arch{Issue: 4, LoadLatency: 2, IntCore: 16, FPCore: 32,
		Mode: regconn.WithRC, CombineConnects: true}
	start := time.Now()
	total := int64(0)
	const reps = 20
	for i := 0; i < reps; i++ {
		fresh := newRunner()
		res, err := fresh.Run(bm, arch)
		if err != nil {
			return err
		}
		total += res.Instrs
	}
	rep.SimInstrsPerSec = float64(total) / time.Since(start).Seconds()

	// Cycle-ledger snapshot of the same point, with the invariant checked.
	ex, err := regconn.Build(bm.Build(), arch)
	if err != nil {
		return err
	}
	res, err := ex.Run()
	if err != nil {
		return err
	}
	if err := res.CheckLedger(); err != nil {
		return err
	}
	rep.CenterBench = bm.Name
	rep.CenterStats = res.Stats()

	js, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	js = append(js, '\n')
	if *out == "-" {
		_, err := os.Stdout.Write(js)
		return err
	}
	if err := os.WriteFile(*out, js, 0o644); err != nil {
		return err
	}
	fmt.Printf("rcbench: wrote %s (fig7 %.0fms, fig10 %.0fms, suite %.0fms, %.2fM sim-instrs/s)\n",
		*out, rep.Fig7Ms, rep.Fig10Ms, rep.FullSuiteMs, rep.SimInstrsPerSec/1e6)
	return nil
}
