// Command rcbench measures simulator performance and writes a small JSON
// report for tracking figure-regeneration cost across changes.
//
// Usage:
//
//	rcbench [-o BENCH_sim.json] [-workers n] [-quick] [-gate]
//	        [-cpuprofile FILE] [-memprofile FILE]
//
// -cpuprofile / -memprofile write runtime/pprof profiles of the benchmark
// run for `go tool pprof` (see DESIGN.md §10).
//
// It times the two heaviest single figures (7 and 10) and the full
// experiment suite on fresh runners (no memoized results), and measures
// raw simulation throughput in machine instructions per second: the
// program is built once, then resimulated on a reused run arena, so the
// number reports the steady-state sweep cost (DESIGN.md §13), not
// compile+allocate cost. The same loop counts heap allocations, and the
// report records allocs per run and per simulated cycle — the arena
// contract says both are zero. -gate performs only that allocation
// measurement and exits nonzero if the steady state allocates (the
// `make verify` hook, see scripts/benchgate.sh). -quick uses the reduced
// three-benchmark suite for everything. The report also embeds the
// cycle-ledger statistics of the throughput benchmark at the paper's
// center configuration (stall breakdown, issue-slot histogram, map-table
// telemetry) so future changes can diff the attribution.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"time"

	"regconn"
	"regconn/internal/exp"
	"regconn/internal/machine"
)

type report struct {
	GoMaxProcs      int     `json:"gomaxprocs"`
	Workers         int     `json:"workers"`
	Quick           bool    `json:"quick_suite"`
	Fig7Ms          float64 `json:"fig7_ms"`
	Fig10Ms         float64 `json:"fig10_ms"`
	FullSuiteMs     float64 `json:"full_suite_ms"`
	SimInstrsPerSec float64 `json:"sim_instrs_per_sec"`

	// Steady-state allocation behavior of the warm-arena loop that
	// produced SimInstrsPerSec. The arena contract (DESIGN.md §13) pins
	// both at zero; scripts/benchgate.sh fails verify if they regress.
	AllocsPerRun       float64 `json:"allocs_per_run"`
	SteadyAllocsPerCyc float64 `json:"steady_allocs_per_cycle"`

	// CenterBench/CenterStats pin the cycle ledger of the throughput
	// benchmark at the center configuration.
	CenterBench string        `json:"center_bench"`
	CenterStats machine.Stats `json:"center_stats"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rcbench:", err)
		os.Exit(1)
	}
}

// run carries the whole benchmark so the profile-writing defers fire on
// every exit path — a fatal os.Exit in main would skip them and leave a
// truncated (unreadable) pprof file behind.
func run() (err error) {
	var (
		out        = flag.String("o", "BENCH_sim.json", "output JSON path (- for stdout)")
		workers    = flag.Int("workers", 0, "simulation worker pool size (0 = all CPUs)")
		quick      = flag.Bool("quick", false, "reduced three-benchmark suite")
		gate       = flag.Bool("gate", false, "only check the zero-alloc steady state; no report")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to FILE")
		memprofile = flag.String("memprofile", "", "write a heap profile at exit to FILE")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, cerr := os.Create(*cpuprofile)
		if cerr != nil {
			return cerr
		}
		if cerr := pprof.StartCPUProfile(f); cerr != nil {
			f.Close()
			return cerr
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			runtime.GC()
			f, merr := os.Create(*memprofile)
			if merr != nil {
				if err == nil {
					err = merr
				}
				return
			}
			defer f.Close()
			if merr := pprof.WriteHeapProfile(f); merr != nil && err == nil {
				err = merr
			}
		}()
	}

	newRunner := func() *exp.Runner {
		r := exp.NewRunner()
		if *quick {
			r = exp.NewQuickRunner()
		}
		r.Workers = *workers
		return r
	}

	if *gate {
		m, err := measureSteadyState(newRunner(), 8)
		if err != nil {
			return err
		}
		// Same tolerance as testing.AllocsPerRun's integer truncation:
		// sporadic sub-1/run runtime noise passes, a real per-run leak fails.
		if m.allocsPerRun >= 1 {
			return fmt.Errorf("steady-state arena run allocates: %.1f allocs/run (%.2g allocs/cycle), want 0",
				m.allocsPerRun, m.allocsPerCycle)
		}
		fmt.Printf("rcbench: steady state clean: 0 allocs/run over %d warm runs (%.2fM sim-instrs/s)\n",
			m.reps, m.instrsPerSec/1e6)
		return nil
	}
	timeIDs := func(ids ...string) (float64, error) {
		r := newRunner()
		start := time.Now()
		for _, id := range ids {
			if _, err := r.Generate(id); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(start).Microseconds()) / 1000, nil
	}

	rep := report{GoMaxProcs: runtime.GOMAXPROCS(0), Workers: *workers, Quick: *quick}
	if rep.Fig7Ms, err = timeIDs("fig7"); err != nil {
		return err
	}
	if rep.Fig10Ms, err = timeIDs("fig10"); err != nil {
		return err
	}
	if rep.FullSuiteMs, err = timeIDs(exp.Experiments()...); err != nil {
		return err
	}

	// Raw simulation speed on one benchmark at the paper's center
	// configuration, the quantity that bounds full-suite experiment time:
	// build once, then resimulate on a warm arena (the sweep hot path).
	m, err := measureSteadyState(newRunner(), 40)
	if err != nil {
		return err
	}
	rep.SimInstrsPerSec = m.instrsPerSec
	rep.AllocsPerRun = m.allocsPerRun
	rep.SteadyAllocsPerCyc = m.allocsPerCycle
	rep.CenterBench = m.bench
	rep.CenterStats = m.stats

	js, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	js = append(js, '\n')
	if *out == "-" {
		_, err := os.Stdout.Write(js)
		return err
	}
	if err := os.WriteFile(*out, js, 0o644); err != nil {
		return err
	}
	fmt.Printf("rcbench: wrote %s (fig7 %.0fms, fig10 %.0fms, suite %.0fms, %.2fM sim-instrs/s, %.0f allocs/run)\n",
		*out, rep.Fig7Ms, rep.Fig10Ms, rep.FullSuiteMs, rep.SimInstrsPerSec/1e6, rep.AllocsPerRun)
	return nil
}

// steadyState is one warm-arena measurement: throughput and allocation
// counts over reps resimulations of a prebuilt executable.
type steadyState struct {
	bench          string
	reps           int
	instrsPerSec   float64
	allocsPerRun   float64
	allocsPerCycle float64
	stats          machine.Stats
}

// measureSteadyState builds the runner's first benchmark at the paper's
// center configuration, warms a run arena, then resimulates it reps times
// counting wall time and heap allocations (runtime.MemStats.Mallocs
// delta). The warm-up run pays the one-time arena growth so the counted
// reps see the steady state the arena contract promises: zero allocations.
func measureSteadyState(r *exp.Runner, reps int) (steadyState, error) {
	bm := r.Benchmarks[0]
	arch := regconn.Arch{Issue: 4, LoadLatency: 2, IntCore: 16, FPCore: 32,
		Mode: regconn.WithRC, CombineConnects: true}
	ex, err := regconn.Build(bm.Build(), arch)
	if err != nil {
		return steadyState{}, err
	}
	arena := regconn.NewArena()
	res, err := arena.Run(ex)
	if err != nil {
		return steadyState{}, err
	}
	if err := res.CheckLedger(); err != nil {
		return steadyState{}, err
	}
	out := steadyState{bench: bm.Name, reps: reps, stats: res.Stats()}

	// As testing.AllocsPerRun does: keep the collector out of the measured
	// window so its own bookkeeping is not billed to the arena.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	total := int64(0)
	for i := 0; i < reps; i++ {
		res, err := arena.Run(ex)
		if err != nil {
			return steadyState{}, err
		}
		total += res.Instrs
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	out.instrsPerSec = float64(total) / elapsed.Seconds()
	out.allocsPerRun = float64(after.Mallocs-before.Mallocs) / float64(reps)
	if out.stats.Cycles > 0 {
		out.allocsPerCycle = out.allocsPerRun / float64(out.stats.Cycles)
	}
	return out, nil
}
