// Command rcdis compiles a benchmark and disassembles the generated
// machine code, showing the connect instructions the with-RC model inserts
// (compare -mode rc against -mode spill to see connects replace spill
// loads/stores).
//
// Usage:
//
//	rcdis -bench grep [-func main] [-mode rc|spill|unlimited]
//	      [-intcore 16] [-fpcore 32] [-issue 4] [-model 3]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"regconn"
	"regconn/internal/bench"
	"regconn/internal/cli"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rcdis:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		bmName  = flag.String("bench", "grep", "benchmark name")
		fnName  = flag.String("func", "", "only this function (default: all)")
		mode    = flag.String("mode", "rc", "register mode: rc, spill, unlimited")
		intCore = flag.Int("intcore", 16, "core integer registers")
		fpCore  = flag.Int("fpcore", 32, "core floating-point registers")
		issue   = flag.Int("issue", 4, "issue rate")
		model   = flag.Int("model", 3, "RC model 1..4")
	)
	flag.Parse()

	bm, err := bench.ByName(*bmName)
	if err != nil {
		return err
	}
	rcModel, err := cli.ParseModel(*model)
	if err != nil {
		return err
	}
	arch := regconn.Arch{
		Issue: *issue, LoadLatency: 2,
		IntCore: *intCore, FPCore: *fpCore,
		Model: rcModel, CombineConnects: true,
	}
	if arch.Mode, err = cli.ParseMode(*mode); err != nil {
		return err
	}
	ex, err := regconn.Build(bm.Build(), arch)
	if err != nil {
		return err
	}
	found := false
	for _, f := range ex.MProg.Funcs {
		if *fnName != "" && f.Name != *fnName {
			continue
		}
		found = true
		fmt.Printf("%s:  ; frame=%d connects=%d spills=%d save/restore=%d\n",
			f.Name, f.FrameSize, f.ConnectCount, f.SpillCount, f.SaveRestoreCount)
		for i := range f.Code {
			fmt.Printf("%5d:  %s\n", i, f.Code[i].String())
		}
		fmt.Println()
	}
	if !found {
		var names []string
		for _, f := range ex.MProg.Funcs {
			names = append(names, f.Name)
		}
		return fmt.Errorf("no function %q in %s (have: %s)",
			*fnName, bm.Name, strings.Join(names, ", "))
	}
	return nil
}
