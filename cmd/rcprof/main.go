// Command rcprof is the attribution profiler: it simulates a benchmark
// with per-PC cycle attribution enabled and reports where the cycles went
// — hottest static instructions, basic blocks, per-function stall tables,
// and connect overhead per virtual register — every number provably
// summing back to the run's cycle ledger (the cross-check runs before any
// report is printed).
//
// Usage:
//
//	rcprof -bench grep [-issue 4] [-load 2] [-channels 0] [-intcore 16]
//	       [-fpcore 32] [-mode rc|spill|unlimited] [-model 3]
//	       [-connect-latency 0] [-no-combine] [-scalar] [-top 20]
//	rcprof -bench grep -models              connect overhead across the 4 reset models
//	rcprof -bench grep -trace-json t.json   Chrome trace-event export (chrome://tracing)
//	rcprof -grid [-workers n]               profile + cross-check the 48-point golden grid
//
// -grid sweeps every benchmark × ledger configuration of the golden grid
// with profiling on and fails loudly if any point's per-PC attribution
// does not sum bit-exactly to its ledger buckets (the `make prof` gate).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"text/tabwriter"

	"regconn"
	"regconn/internal/bench"
	"regconn/internal/cli"
	"regconn/internal/core"
	"regconn/internal/exp"
	"regconn/internal/machine"
	"regconn/internal/prof"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rcprof:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		bmName    = flag.String("bench", "grep", "benchmark name")
		issue     = flag.Int("issue", 4, "issue rate (1/2/4/8)")
		load      = flag.Int("load", 2, "load latency in cycles (2 or 4)")
		channels  = flag.Int("channels", 0, "memory channels (0 = paper default)")
		intCore   = flag.Int("intcore", 16, "core integer registers")
		fpCore    = flag.Int("fpcore", 32, "core floating-point registers")
		mode      = flag.String("mode", "rc", "register mode: rc, spill, unlimited")
		model     = flag.Int("model", 3, "RC automatic-reset model 1..4")
		connLat   = flag.Int("connect-latency", 0, "connect latency (0 or 1)")
		noComb    = flag.Bool("no-combine", false, "disable combined connects")
		scalar    = flag.Bool("scalar", false, "scalar optimization only (no ILP)")
		top       = flag.Int("top", 20, "rows in the top-PC and top-block tables")
		models    = flag.Bool("models", false, "compare connect overhead across reset models 1..4")
		traceJSON = flag.String("trace-json", "", "write a Chrome trace-event JSON file and exit")
		eventCap  = flag.Int("event-cap", machine.DefaultEventCap, "event ring capacity for -trace-json")
		grid      = flag.Bool("grid", false, "cross-check attribution over the golden benchmark grid")
		quick     = flag.Bool("quick", false, "with -grid: reduced three-benchmark suite")
		workers   = flag.Int("workers", 0, "with -grid: worker pool size (0 = all CPUs)")
	)
	flag.Parse()

	if *grid {
		return runGrid(*quick, *workers)
	}

	bm, err := bench.ByName(*bmName)
	if err != nil {
		return err
	}
	rcModel, err := cli.ParseModel(*model)
	if err != nil {
		return err
	}
	arch := regconn.Arch{
		Issue:           *issue,
		MemChannels:     *channels,
		LoadLatency:     *load,
		IntCore:         *intCore,
		FPCore:          *fpCore,
		Model:           rcModel,
		ConnectLatency:  *connLat,
		CombineConnects: !*noComb,
		ScalarOnly:      *scalar,
		Profile:         true,
	}
	if arch.Mode, err = cli.ParseMode(*mode); err != nil {
		return err
	}

	if *models {
		return compareModels(bm, arch)
	}

	ex, err := regconn.Build(bm.Build(), arch)
	if err != nil {
		return err
	}

	if *traceJSON != "" {
		ring := machine.NewEventRing(*eventCap)
		if _, err := ex.RunWithEvents(ring); err != nil {
			return err
		}
		f, err := os.Create(*traceJSON)
		if err != nil {
			return err
		}
		if err := ring.WriteTraceJSON(f, ex.Image); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("rcprof: wrote %s (%d events, %d dropped; open in chrome://tracing or ui.perfetto.dev)\n",
			*traceJSON, len(ring.Events()), ring.Dropped())
		return nil
	}

	res, err := ex.Run()
	if err != nil {
		return err
	}
	p, err := prof.New(ex.Image, res)
	if err != nil {
		return err
	}
	fmt.Printf("benchmark %s, %s\n", bm.Name, arch.Mode)
	return p.WriteReport(os.Stdout, *top)
}

// compareModels profiles the benchmark under each of the four automatic-
// reset models and tabulates the connect overhead the profiler attributes
// to each — the per-model cost of the register-connection mechanism.
func compareModels(bm bench.Benchmark, arch regconn.Arch) error {
	arch.Mode = regconn.WithRC
	tw := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintf(tw, "model\tcycles\tconnects\tconnect-cycles\tconn-stall\toverhead\n")
	for m := core.NoReset; m <= core.ReadWriteReset; m++ {
		a := arch
		a.Model = m
		ex, err := regconn.Build(bm.Build(), a)
		if err != nil {
			return fmt.Errorf("model %d: %w", m, err)
		}
		res, err := ex.Run()
		if err != nil {
			return fmt.Errorf("model %d: %w", m, err)
		}
		p, err := prof.New(ex.Image, res)
		if err != nil {
			return fmt.Errorf("model %d: %w", m, err)
		}
		if err := p.CrossCheck(); err != nil {
			return fmt.Errorf("model %d: %w", m, err)
		}
		co := p.ConnectOverhead()
		overhead := co.Cycles + res.StallConn
		fmt.Fprintf(tw, "%d (%v)\t%d\t%d\t%d\t%d\t%.1f%%\n",
			int(m), m, res.Cycles, res.Connects, co.Cycles, res.StallConn,
			100*float64(overhead)/float64(res.ActiveCycles))
	}
	return tw.Flush()
}

// runGrid profiles every golden benchmark×config point and verifies the
// per-PC attribution sums bit-exactly to the ledger buckets on each.
func runGrid(quick bool, workers int) error {
	benches := bench.All()
	if quick {
		benches = exp.NewQuickRunner().Benchmarks
	}
	type job struct {
		bm bench.Benchmark
		lc exp.LedgerConfig
	}
	var jobs []job
	for _, bm := range benches {
		for _, lc := range exp.LedgerConfigs(bm) {
			jobs = append(jobs, job{bm, lc})
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	lines := make([]string, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			jb := jobs[i]
			a := jb.lc.Arch
			a.Profile = true
			ex, err := regconn.Build(jb.bm.Build(), a)
			if err != nil {
				errs[i] = fmt.Errorf("%s/%s: %w", jb.bm.Name, jb.lc.Name, err)
				return
			}
			res, err := ex.Verify()
			if err != nil {
				errs[i] = fmt.Errorf("%s/%s: %w", jb.bm.Name, jb.lc.Name, err)
				return
			}
			p, err := prof.New(ex.Image, res)
			if err != nil {
				errs[i] = fmt.Errorf("%s/%s: %w", jb.bm.Name, jb.lc.Name, err)
				return
			}
			if err := p.CrossCheck(); err != nil {
				errs[i] = fmt.Errorf("%s/%s: attribution does not match ledger: %w",
					jb.bm.Name, jb.lc.Name, err)
				return
			}
			co := p.ConnectOverhead()
			lines[i] = fmt.Sprintf("ok %-10s %-14s cycles=%-9d connects=%-7d connect-cycles=%d",
				jb.bm.Name, jb.lc.Name, res.Cycles, res.Connects, co.Cycles)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for _, l := range lines {
		fmt.Println(l)
	}
	fmt.Printf("rcprof: %d grid points profiled, every per-PC attribution sums to its ledger bucket\n", len(jobs))
	return nil
}
