// Command rclint sweeps the benchmark suite across register backends, RC
// automatic-reset models, and connect-combining settings, running the
// static map-state verifier (internal/mapcheck) on every compiled program
// and reporting each violation with its function and instruction index.
//
// Usage:
//
//	rclint [-bench all|name,name] [-backends all|name,name] [-issue 1,4,8]
//	       [-intcore 16] [-fpcore 32] [-quick] [-workers N] [-v]
//
// The default grid is every benchmark × every registered backend × the
// requested issue rates, with rc additionally expanded over its 4 reset
// models × combine on/off and portreduce over two read-port widths — the
// full correctness surface of the code generator and scheduler. -backends
// restricts the sweep to a backend subset (registry names); -quick
// restricts it to one issue rate and the evaluated model 3 (both combine
// settings). Exit status is 1 when any violation is found.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"regconn"
	"regconn/internal/backend"
	"regconn/internal/bench"
	"regconn/internal/core"
	"regconn/internal/mapcheck"
)

type point struct {
	bm   bench.Benchmark
	arch regconn.Arch
	desc string
}

type finding struct {
	desc string
	vs   []mapcheck.Violation
	err  error
}

// errViolations marks a completed sweep that found failures (exit 1, the
// summary is already printed); usageError marks bad flags (exit 2).
var errViolations = errors.New("violations found")

type usageError struct{ err error }

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

func main() {
	err := run()
	if err == nil {
		return
	}
	if errors.Is(err, errViolations) {
		os.Exit(1) // run already printed the per-point FAIL lines
	}
	fmt.Fprintln(os.Stderr, "rclint:", err)
	var ue usageError
	if errors.As(err, &ue) {
		os.Exit(2)
	}
	os.Exit(1)
}

func run() error {
	var (
		bmList  = flag.String("bench", "all", "benchmarks to sweep (comma list, or 'all')")
		beList  = flag.String("backends", "all", "backends to sweep (comma list of registry names, or 'all')")
		issues  = flag.String("issue", "1,4,8", "issue rates to sweep (comma list)")
		intCore = flag.Int("intcore", 16, "core integer registers")
		fpCore  = flag.Int("fpcore", 32, "core floating-point registers")
		quick   = flag.Bool("quick", false, "one issue rate, model 3 only")
		windows = flag.String("windows", "lru", "connect-window policy: lru, round-robin, first-free")
		workers = flag.Int("workers", runtime.NumCPU(), "parallel builds")
		verbose = flag.Bool("v", false, "print every point checked")
	)
	flag.Parse()

	bms, err := selectBenchmarks(*bmList)
	if err != nil {
		return usageError{err}
	}
	backends, err := selectBackends(*beList)
	if err != nil {
		return usageError{err}
	}
	rates, err := parseInts(*issues)
	if err != nil {
		return usageError{fmt.Errorf("-issue: %w", err)}
	}
	if *quick {
		rates = rates[:1]
	}
	var winPolicy regconn.WindowPolicy
	switch *windows {
	case "lru":
		winPolicy = regconn.WindowLRU
	case "round-robin":
		winPolicy = regconn.WindowRoundRobin
	case "first-free":
		winPolicy = regconn.WindowFirstFree
	default:
		return usageError{fmt.Errorf("unknown -windows policy %q", *windows)}
	}

	var points []point
	for _, bm := range bms {
		for _, issue := range rates {
			base := regconn.Arch{Issue: issue, LoadLatency: 2, IntCore: *intCore, FPCore: *fpCore,
				Windows: winPolicy}
			for _, cfg := range archGrid(base, *quick, backends) {
				points = append(points, point{bm: bm, arch: cfg.arch,
					desc: fmt.Sprintf("%s %s", bm.Name, cfg.name)})
			}
		}
	}

	results := make([]finding, len(points))
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxInt(*workers, 1))
	for i := range points {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			pt := points[i]
			ex, err := regconn.Build(pt.bm.Build(), pt.arch)
			if err != nil {
				results[i] = finding{desc: pt.desc, err: err}
				return
			}
			results[i] = finding{desc: pt.desc, vs: ex.MapCheck()}
		}(i)
	}
	wg.Wait()

	bad := 0
	for _, r := range results {
		switch {
		case r.err != nil:
			bad++
			fmt.Printf("FAIL %s: build: %v\n", r.desc, r.err)
		case len(r.vs) > 0:
			bad++
			fmt.Printf("FAIL %s: %d violation(s)\n", r.desc, len(r.vs))
			for _, v := range r.vs {
				fmt.Printf("     %s\n", v)
			}
		case *verbose:
			fmt.Printf("ok   %s\n", r.desc)
		}
	}
	if bad > 0 {
		fmt.Printf("rclint: %d of %d points failed\n", bad, len(points))
		return errViolations
	}
	fmt.Printf("rclint: %d points clean\n", len(points))
	return nil
}

type namedArch struct {
	name string
	arch regconn.Arch
}

// archGrid expands one base architecture into the backend × model ×
// combine grid for the selected backends. Models and combining only exist
// under RC, which contributes its full sub-grid; portreduce is checked at
// two read-port widths; every other backend — including ones registered
// after this tool was written — contributes a single point through its
// registry name.
func archGrid(base regconn.Arch, quick bool, backends []string) []namedArch {
	var out []namedArch
	for _, name := range backends {
		switch name {
		case "spill":
			a := base
			a.Mode = regconn.WithoutRC
			out = append(out, namedArch{fmt.Sprintf("issue%d spill", base.Issue), a})
		case "unlimited":
			a := base
			a.Mode = regconn.Unlimited
			out = append(out, namedArch{fmt.Sprintf("issue%d unlimited", base.Issue), a})
		case "rc":
			models := []core.Model{core.NoReset, core.WriteReset, core.WriteResetReadUpdate, core.ReadWriteReset}
			if quick {
				models = []core.Model{core.WriteResetReadUpdate}
			}
			for _, model := range models {
				for _, combine := range []bool{true, false} {
					a := base
					a.Mode = regconn.WithRC
					a.Model = model
					a.CombineConnects = combine
					out = append(out, namedArch{
						fmt.Sprintf("issue%d rc model%d combine=%v", base.Issue, model, combine), a})
				}
			}
		case "portreduce":
			for _, rp := range []int{0, 2} {
				a := base
				a.Mode = regconn.PortReduce
				a.ReadPorts = rp
				ports := "ports=issue"
				if rp > 0 {
					ports = fmt.Sprintf("ports=%d", rp)
				}
				out = append(out, namedArch{
					fmt.Sprintf("issue%d portreduce %s", base.Issue, ports), a})
			}
		default:
			a := base
			a.Backend = name
			out = append(out, namedArch{fmt.Sprintf("issue%d %s", base.Issue, name), a})
		}
	}
	return out
}

// selectBackends resolves a -backends flag value against the backend
// registry; the accepted-name set and the rejection message both come from
// the registry.
func selectBackends(list string) ([]string, error) {
	if list == "all" {
		return backend.Names(), nil
	}
	var out []string
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if _, err := backend.ByName(name); err != nil {
			return nil, fmt.Errorf("-backends: %w", err)
		}
		out = append(out, name)
	}
	return out, nil
}

func selectBenchmarks(list string) ([]bench.Benchmark, error) {
	if list == "all" {
		return bench.All(), nil
	}
	var out []bench.Benchmark
	for _, name := range strings.Split(list, ",") {
		bm, err := bench.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, bm)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	sort.Ints(out)
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
