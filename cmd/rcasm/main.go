// Command rcasm assembles a machine program (connect instructions
// included) and runs it on the simulator — the ISA extension without the
// compiler in the way.
//
// Usage:
//
//	rcasm prog.s [-intcore 8] [-fpcore 8] [-total 256] [-issue 4]
//	      [-model 3] [-dis] [-trace]
//
// -dis prints the (re)disassembled program instead of running it.
package main

import (
	"flag"
	"fmt"
	"os"

	"regconn/internal/asm"
	"regconn/internal/cli"
	"regconn/internal/isa"
	"regconn/internal/machine"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rcasm:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		intCore = flag.Int("intcore", 8, "core integer registers")
		fpCore  = flag.Int("fpcore", 8, "core floating-point registers")
		total   = flag.Int("total", 256, "total physical registers per file")
		issue   = flag.Int("issue", 4, "issue rate")
		load    = flag.Int("load", 2, "load latency")
		model   = flag.Int("model", 3, "RC automatic-reset model 1..4")
		dis     = flag.Bool("dis", false, "disassemble instead of running")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: rcasm [flags] prog.s")
	}
	rcModel, err := cli.ParseModel(*model)
	if err != nil {
		return err
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}
	mp, err := asm.Assemble(string(src))
	if err != nil {
		return err
	}
	if *dis {
		fmt.Print(asm.Disassemble(mp))
		return nil
	}
	img, err := machine.Load(mp)
	if err != nil {
		return err
	}
	cfg := machine.Config{
		IssueRate:   *issue,
		MemChannels: 2,
		Lat:         isa.DefaultLatencies(*load),
		IntCore:     *intCore, IntTotal: *total,
		FPCore: *fpCore, FPTotal: *total,
		Model: rcModel,
	}
	res, err := machine.Run(img, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("r2       = %d\n", res.RetInt)
	fmt.Printf("cycles   = %d\n", res.Cycles)
	fmt.Printf("instrs   = %d (IPC %.2f)\n", res.Instrs, res.IPC())
	fmt.Printf("connects = %d\n", res.Connects)
	return nil
}
