// Command rctop is a terminal dashboard over a fleet of rcserve
// replicas: it polls each replica's GET /metrics (the flat expvar JSON
// map) and GET /v1/sweeps (live sweep progress) and renders per-replica
// and fleet-wide throughput, cache hit rates, latency quantiles, and the
// progress of in-flight sweeps with their per-peer breakdown.
//
// Usage:
//
//	rctop -peers URL,URL,... [-interval 2s] [-timeout 5s] [-once]
//
// -peers lists the replicas to watch (any subset of the fleet; typically
// the same list the replicas were started with). Throughput is computed
// from counter deltas between consecutive frames, so the first frame of
// a live session shows dashes. -once prints a single frame without
// clearing the screen and exits — useful in scripts; a down replica
// renders as "down" rather than failing the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"
	"unicode/utf8"

	"regconn/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rctop:", err)
		os.Exit(1)
	}
}

// replica is one polled rcserve instance.
type replica struct {
	base string
	up   bool
	err  error
	m    map[string]float64
	sw   serve.SweepsResponse
	t    time.Time // when m was fetched

	// previous frame, for rate deltas
	prevRequests float64
	prevTime     time.Time
	hasPrev      bool
}

func run() error {
	var (
		peers    = flag.String("peers", "", "comma-separated rcserve base URLs to watch (required)")
		interval = flag.Duration("interval", 2*time.Second, "poll/refresh interval")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-poll HTTP timeout")
		once     = flag.Bool("once", false, "print one frame and exit (no screen clearing)")
	)
	flag.Parse()
	if *peers == "" {
		return fmt.Errorf("-peers is required (comma-separated rcserve base URLs)")
	}
	var reps []*replica
	for _, p := range strings.Split(*peers, ",") {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p == "" {
			return fmt.Errorf("-peers contains an empty entry")
		}
		reps = append(reps, &replica{base: p})
	}
	client := &http.Client{Timeout: *timeout}

	for {
		pollAll(client, reps)
		frame := render(reps)
		if *once {
			fmt.Print(frame)
			return nil
		}
		// Clear and home, then draw.
		fmt.Print("\x1b[H\x1b[2J" + frame)
		time.Sleep(*interval)
	}
}

// pollAll fetches /metrics and /v1/sweeps from every replica
// concurrently.
func pollAll(client *http.Client, reps []*replica) {
	done := make(chan struct{}, len(reps))
	for _, rp := range reps {
		go func(rp *replica) {
			defer func() { done <- struct{}{} }()
			now := time.Now()
			m, err := fetchMetrics(client, rp.base)
			if err != nil {
				rp.up, rp.err = false, err
				rp.hasPrev = false
				return
			}
			sw, err := fetchSweeps(client, rp.base)
			if err != nil {
				rp.up, rp.err = false, err
				rp.hasPrev = false
				return
			}
			if rp.up {
				rp.prevRequests = rp.m["requests"]
				rp.prevTime = rp.t
				rp.hasPrev = true
			}
			rp.up, rp.err = true, nil
			rp.m, rp.sw = m, sw
			rp.t = now
		}(rp)
	}
	for range reps {
		<-done
	}
}

func fetchMetrics(client *http.Client, base string) (map[string]float64, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	var m map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, fmt.Errorf("GET /metrics: %v", err)
	}
	return m, nil
}

func fetchSweeps(client *http.Client, base string) (serve.SweepsResponse, error) {
	var sw serve.SweepsResponse
	resp, err := client.Get(base + "/v1/sweeps")
	if err != nil {
		return sw, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return sw, fmt.Errorf("GET /v1/sweeps: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&sw); err != nil {
		return sw, fmt.Errorf("GET /v1/sweeps: %v", err)
	}
	return sw, nil
}

// reqRate returns requests/second since the previous frame ("" when
// unknown).
func (rp *replica) reqRate() string {
	if !rp.hasPrev || rp.t.Sub(rp.prevTime) <= 0 {
		return "-"
	}
	rate := (rp.m["requests"] - rp.prevRequests) / rp.t.Sub(rp.prevTime).Seconds()
	if rate < 0 {
		return "-" // counter reset (replica restarted)
	}
	return fmt.Sprintf("%.1f", rate)
}

// hitPct returns the cache hit percentage over all answered points.
func hitPct(m map[string]float64) string {
	total := m["cache_hits"] + m["cache_misses"] + m["coalesced"]
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", 100*m["cache_hits"]/total)
}

func render(reps []*replica) string {
	var sb strings.Builder
	now := time.Now().Format("15:04:05")
	fmt.Fprintf(&sb, "rctop — %d replica(s) — %s\n\n", len(reps), now)
	fmt.Fprintf(&sb, "%-34s %-5s %8s %7s %9s %9s %7s %8s %7s\n",
		"REPLICA", "UP", "REQ/S", "HIT%", "P50 MS", "P99 MS", "INFLT", "STORE", "SWEEPS")
	var fleet struct {
		hits, misses, co, inflight, store float64
		active                            int
	}
	for _, rp := range reps {
		if !rp.up {
			fmt.Fprintf(&sb, "%-34s %-5s\n", clip(rp.base, 34), "down")
			continue
		}
		active := 0
		for _, v := range rp.sw.Sweeps {
			if v.Active {
				active++
			}
		}
		fmt.Fprintf(&sb, "%-34s %-5s %8s %7s %9.1f %9.1f %7.0f %8.0f %7d\n",
			clip(rp.base, 34), "ok", rp.reqRate(), hitPct(rp.m),
			rp.m["latency_p50_ms"], rp.m["latency_p99_ms"],
			rp.m["inflight"], rp.m["store_entries"], active)
		fleet.hits += rp.m["cache_hits"]
		fleet.misses += rp.m["cache_misses"]
		fleet.co += rp.m["coalesced"]
		fleet.inflight += rp.m["inflight"]
		fleet.store += rp.m["store_entries"]
		fleet.active += active
	}
	fleetTotal := fleet.hits + fleet.misses + fleet.co
	fleetHit := "-"
	if fleetTotal > 0 {
		fleetHit = fmt.Sprintf("%.1f", 100*fleet.hits/fleetTotal)
	}
	fmt.Fprintf(&sb, "%-34s %-5s %8s %7s %9s %9s %7.0f %8.0f %7d\n",
		"FLEET", "", "", fleetHit, "", "", fleet.inflight, fleet.store, fleet.active)

	sb.WriteString("\nSWEEPS\n")
	any := false
	for _, rp := range reps {
		for _, v := range rp.sw.Sweeps {
			any = true
			state := "done"
			if v.Active {
				state = "live"
			}
			fmt.Fprintf(&sb, "  %s  %s  %s  %4d/%-4d errs %d  %6.1fs  %s\n",
				v.ID, clip(rp.base, 24), state, v.Done, v.Total, v.Errors,
				float64(v.ElapsedMS)/1000, bar(v.Done, v.Total, 20))
			for _, owner := range sortedOwners(v.Peers) {
				pp := v.Peers[owner]
				fmt.Fprintf(&sb, "      %-30s %4d/%-4d\n", clip(owner, 30), pp.Done, pp.Total)
			}
		}
	}
	if !any {
		sb.WriteString("  (none)\n")
	}
	return sb.String()
}

func sortedOwners(peers map[string]serve.SweepPeerView) []string {
	out := make([]string, 0, len(peers))
	for o := range peers {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// bar renders a [####....] progress bar of the given width.
func bar(done, total, width int) string {
	if total <= 0 {
		return ""
	}
	fill := done * width / total
	if fill > width {
		fill = width
	}
	return "[" + strings.Repeat("#", fill) + strings.Repeat(".", width-fill) + "]"
}

// clip truncates s to n runes with an ellipsis, never cutting mid-rune
// (replica URLs and sweep owners are not guaranteed to be ASCII).
func clip(s string, n int) string {
	if utf8.RuneCountInString(s) <= n {
		return s
	}
	if n <= 0 {
		return ""
	}
	r := []rune(s)
	if n == 1 {
		return string(r[:1])
	}
	return string(r[:n-1]) + "…"
}
