package main

import (
	"testing"
	"unicode/utf8"
)

func TestClipRuneBoundaries(t *testing.T) {
	cases := []struct {
		s    string
		n    int
		want string
	}{
		{"short", 10, "short"},
		{"exactly-8", 9, "exactly-8"},
		{"0123456789", 5, "0123…"},
		{"0123456789", 1, "0"},
		{"0123456789", 0, ""},
		{"héllo-wörld", 11, "héllo-wörld"},
		{"héllo-wörld", 5, "héll…"},
		{"日本語のテキスト", 4, "日本語…"},
		{"日本語のテキスト", 1, "日"},
	}
	for _, c := range cases {
		got := clip(c.s, c.n)
		if got != c.want {
			t.Errorf("clip(%q, %d) = %q, want %q", c.s, c.n, got, c.want)
		}
		if !utf8.ValidString(got) {
			t.Errorf("clip(%q, %d) = %q: invalid UTF-8", c.s, c.n, got)
		}
	}
}
