#!/bin/sh
# Asserts the zero-allocation steady state of the simulation arena: after
# one warm-up run, resimulating a prebuilt executable on a reused arena
# must not allocate (DESIGN.md §13). The measurement lives in rcbench
# (-gate), which counts runtime.MemStats.Mallocs across warm runs and
# fails if the per-run average reaches 1. Guards against the class of
# regression where a hot-path change quietly reintroduces a per-run (or
# worse, per-cycle) allocation and sweep throughput decays with GC load.
#
# Run from the repository root: sh scripts/benchgate.sh
set -u

GO=${GO:-go}

if ! $GO run ./cmd/rcbench -gate; then
    echo "benchgate: steady-state allocation check failed" >&2
    exit 1
fi
