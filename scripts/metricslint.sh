#!/bin/sh
# Cross-checks the metric families registered in internal/serve/metrics.go
# against the metric table in DESIGN.md §15, in both directions: a family
# registered in code but missing from the table is undocumented; a table
# row without a registration is stale documentation. Either fails the
# build (a make verify step).
#
# Run from the repository root: sh scripts/metricslint.sh
set -u

CODE=internal/serve/metrics.go
DOC=DESIGN.md

if [ ! -f "$CODE" ] || [ ! -f "$DOC" ]; then
    echo "metricslint: run from the repository root" >&2
    exit 1
fi

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT INT TERM

# Families registered in code: every reg.Counter/Gauge/Histogram[Vec]/
# GaugeFunc call names its family in a string literal on the call line.
grep -o 'reg\.\(Counter\|CounterVec\|Gauge\|GaugeFunc\|GaugeVec\|Histogram\|HistogramVec\)("[a-z_]*"' "$CODE" |
    sed 's/.*"\([a-z_]*\)"/\1/' | sort -u >"$TMP/code"

# Families documented in the DESIGN.md §15 table: rows of the form
# "| `name` | kind | labels |".
grep -o '^| `[a-z_]*` |' "$DOC" | sed 's/| `\([a-z_]*\)` |/\1/' | sort -u >"$TMP/doc"

if [ ! -s "$TMP/code" ]; then
    echo "metricslint: no registrations found in $CODE (extraction broken?)" >&2
    exit 1
fi
if [ ! -s "$TMP/doc" ]; then
    echo "metricslint: no metric table rows found in $DOC (extraction broken?)" >&2
    exit 1
fi

fails=0
undocumented=$(comm -23 "$TMP/code" "$TMP/doc")
if [ -n "$undocumented" ]; then
    echo "metricslint: registered in $CODE but missing from the $DOC metric table:"
    echo "$undocumented" | sed 's/^/  /'
    fails=1
fi
stale=$(comm -13 "$TMP/code" "$TMP/doc")
if [ -n "$stale" ]; then
    echo "metricslint: documented in $DOC but not registered in $CODE:"
    echo "$stale" | sed 's/^/  /'
    fails=1
fi

if [ "$fails" -ne 0 ]; then
    exit 1
fi
echo "metricslint: $(wc -l <"$TMP/code" | tr -d ' ') families match the DESIGN.md table"
