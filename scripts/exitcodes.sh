#!/bin/sh
# Asserts the exit-code contract of the command-line tools: every failure
# path exits non-zero (usage errors in rclint exit 2), and the success
# paths stay at 0. Guards against the class of bug where a tool printed
# an error — or silently normalized a bad flag value — and still exited 0
# (`rcrun -model 9` used to run model 3 and report success).
#
# Run from the repository root: sh scripts/exitcodes.sh
set -u

GO=${GO:-go}
BIN=$(mktemp -d)
trap 'rm -rf "$BIN"' EXIT INT TERM

if ! $GO build -o "$BIN/" ./cmd/rcrun ./cmd/rclint ./cmd/rcexp ./cmd/rcserve ./cmd/rctop ./cmd/rcgen; then
    echo "exitcodes: build failed" >&2
    exit 1
fi

fails=0

# expect WANT CMD ARGS... runs CMD and checks its exit status.
expect() {
    want=$1
    shift
    "$@" >/dev/null 2>&1
    got=$?
    if [ "$got" -ne "$want" ]; then
        echo "FAIL exit $got (want $want): $*"
        fails=$((fails + 1))
    else
        echo "ok   exit $got: $*"
    fi
}

# expect_msg WANT PATTERN CMD ARGS... additionally requires PATTERN (grep
# BRE) on the combined output — used to pin that backend-name rejections
# list the registry's names, so the message tracks new registrations.
expect_msg() {
    want=$1
    pattern=$2
    shift 2
    out=$("$@" 2>&1)
    got=$?
    if [ "$got" -ne "$want" ]; then
        echo "FAIL exit $got (want $want): $*"
        fails=$((fails + 1))
    elif ! printf '%s\n' "$out" | grep -q "$pattern"; then
        echo "FAIL output missing '$pattern': $*"
        fails=$((fails + 1))
    else
        echo "ok   exit $got: $* (message lists backends)"
    fi
}

# The registry-derived name list every unknown-backend rejection must
# carry (sorted registry order).
BACKEND_LIST="chain, portreduce, rc, spill, or unlimited"

# Likewise for unknown workload-profile rejections: the message must list
# the profile registry (registration order).
PROFILE_LIST="mixed, call-heavy, connect-heavy, mispredict-heavy, trap-heavy, fp-heavy, multiprogrammed"

# rcrun: bad flag values must be rejected, not silently normalized; the
# mode rejection names every registered backend.
expect 1 "$BIN/rcrun" -bench grep -model 9
expect 1 "$BIN/rcrun" -bench grep -model 0
expect_msg 1 "$BACKEND_LIST" "$BIN/rcrun" -bench grep -mode junk
expect 1 "$BIN/rcrun" -bench nosuchbench
expect 0 "$BIN/rcrun" -bench grep
expect 0 "$BIN/rcrun" -bench grep -mode portreduce
expect 0 "$BIN/rcrun" -bench grep -mode chain
expect 0 "$BIN/rcrun" -list

# rcrun generated workloads and trace emission: malformed gen names and
# unknown profiles fail; a valid spec runs, and -emit-trace produces a
# file rcgen accepts.
expect_msg 1 "$PROFILE_LIST" "$BIN/rcrun" -bench gen/nosuchprofile/0
expect 1 "$BIN/rcrun" -bench gen/mixed/notanumber
expect 0 "$BIN/rcrun" -bench gen/mixed/0
expect 0 "$BIN/rcrun" -bench gen/mixed/0 -emit-trace "$BIN/t.rctrace"
expect 0 "$BIN/rcgen" replay "$BIN/t.rctrace"

# rcgen: usage errors exit non-zero; list/emit/info/replay/smoke succeed
# on valid inputs, and corrupt traces are rejected.
expect 2 "$BIN/rcgen"
expect 2 "$BIN/rcgen" nosuchsub
expect 1 "$BIN/rcgen" emit -profile mixed -seed 0
expect_msg 1 "$PROFILE_LIST" "$BIN/rcgen" emit -profile nosuchprofile -o "$BIN/x.rctrace"
expect 1 "$BIN/rcgen" emit -profile mixed -bench grep -o "$BIN/x.rctrace"
expect 1 "$BIN/rcgen" info "$BIN/nosuchfile.rctrace"
expect 1 "$BIN/rcgen" replay /dev/null
expect_msg 1 "$PROFILE_LIST" "$BIN/rcgen" smoke -profiles nosuchprofile
expect 0 "$BIN/rcgen" list
expect 0 "$BIN/rcgen" emit -profile call-heavy -seed 1 -o "$BIN/c.rctrace"
expect 0 "$BIN/rcgen" info "$BIN/c.rctrace"
expect 0 "$BIN/rcgen" replay "$BIN/c.rctrace"
expect 0 "$BIN/rcgen" smoke -seeds 1 -profiles mixed
printf 'rctrace 1 4 deadbeef\njunk' > "$BIN/bad.rctrace"
expect 1 "$BIN/rcgen" replay "$BIN/bad.rctrace"

# rclint: usage errors exit 2 (unknown backends list the registry); a
# clean quick sweep exits 0, including the extension-backend matrix.
expect 2 "$BIN/rclint" -bench nosuchbench
expect 2 "$BIN/rclint" -issue bogus
expect 2 "$BIN/rclint" -windows bogus
expect_msg 2 "$BACKEND_LIST" "$BIN/rclint" -backends bogus
expect 0 "$BIN/rclint" -quick -bench grep -issue 4
expect 0 "$BIN/rclint" -quick -bench grep -issue 4 -backends portreduce,chain

# rcserve: inconsistent shard, store, or observability configuration
# must fail before the daemon binds its listener.
expect 1 "$BIN/rcserve" -peers "http://a:1,http://b:1"
expect 1 "$BIN/rcserve" -peers "http://a:1,http://b:1" -self "http://c:1"
expect 1 "$BIN/rcserve" -peers "http://a:1,," -self "http://a:1"
expect 1 "$BIN/rcserve" -trace-dir /dev/null/nope
expect 1 "$BIN/rcserve" -log bogus
expect 2 "$BIN/rcserve" -slow bogus

# rctop: -peers is required and validated; a down replica is rendered
# as "down" in a -once frame rather than failing the run.
expect 1 "$BIN/rctop"
expect 1 "$BIN/rctop" -peers "http://a:1,,"
expect 2 "$BIN/rctop" -interval bogus
expect 0 "$BIN/rctop" -once -peers "http://127.0.0.1:1"

# rcexp: unknown formats, experiments, and benchmarks must all fail.
expect 1 "$BIN/rcexp" -quick -format junk
expect 1 "$BIN/rcexp" -quick -exp nosuchfigure
expect 1 "$BIN/rcexp" -quick -bench nosuchbench
expect 0 "$BIN/rcexp" -quick -bench grep -exp table1
expect 0 "$BIN/rcexp" -quick -bench grep -exp table1 -format csv

# rcexp scenarios: bad profiles and seed lists fail; a bounded scenario
# run (one profile, one seed) succeeds, and generated workloads work as
# -bench arguments.
expect_msg 1 "$PROFILE_LIST" "$BIN/rcexp" -profile nosuchprofile
expect 1 "$BIN/rcexp" -seeds notanumber
expect 1 "$BIN/rcexp" -seeds 5-2
expect 0 "$BIN/rcexp" -profile mixed -seeds 0
expect 0 "$BIN/rcexp" -quick -bench gen/mixed/0 -exp table1

if [ "$fails" -gt 0 ]; then
    echo "exitcodes: $fails assertion(s) failed"
    exit 1
fi
echo "exitcodes: all assertions passed"
