package regconn

import (
	"fmt"
	"math/rand"
	"testing"

	"regconn/internal/ir"
	"regconn/internal/isa"
)

// genProgram builds a random but well-formed, terminating program:
// structured control flow (if/else, counted loops), bounded memory
// accesses, non-recursive calls, integer and floating-point arithmetic.
// Every program is then compiled under several architectures and the
// simulated results checked against the interpreter — the strongest
// whole-pipeline correctness check in the repository.
type progGen struct {
	rng  *rand.Rand
	p    *ir.Program
	b    *ir.Builder
	base isa.Reg // base address of the scratch global
	vars []isa.Reg
	fps  []isa.Reg
	fns  []string // callable (already generated) functions
}

const fuzzWords = 64

func genProgram(seed int64) *ir.Program {
	g := &progGen{rng: rand.New(rand.NewSource(seed)), p: ir.NewProgram()}
	mem := g.p.AddGlobal("mem", fuzzWords*8)
	mem.InitI = make([]int64, fuzzWords)
	for i := range mem.InitI {
		mem.InitI[i] = g.rng.Int63n(1 << 16)
	}

	// A few leaf functions first, then main that may call them.
	nFuncs := g.rng.Intn(3)
	for i := 0; i < nFuncs; i++ {
		name := fmt.Sprintf("f%d", i)
		g.genFunc(name, 1+g.rng.Intn(2))
		g.fns = append(g.fns, name)
	}
	g.genMain()
	return g.p
}

func (g *progGen) genFunc(name string, params int) {
	b := ir.NewFunc(g.p, name, params, 0)
	g.b = b
	g.base = b.Addr(g.p.Globals[0], 0)
	g.vars = append([]isa.Reg(nil), b.F.Params...)
	g.fps = nil
	g.stmts(2 + g.rng.Intn(4))
	b.Ret(g.intVar())
}

func (g *progGen) genMain() {
	b := ir.NewFunc(g.p, "main", 0, 0)
	g.b = b
	g.base = b.Addr(g.p.Globals[0], 0)
	g.vars = []isa.Reg{b.Const(g.rng.Int63n(100)), b.Const(g.rng.Int63n(100))}
	g.fps = []isa.Reg{b.FConst(0.5 * float64(g.rng.Intn(8)))}
	g.stmts(4 + g.rng.Intn(8))
	// Fold everything into a checksum: integer vars, an FP sample, and a
	// memory sample.
	sum := b.Const(0)
	for _, v := range g.vars {
		b.MovTo(sum, b.Add(sum, v))
	}
	for _, f := range g.fps {
		b.MovTo(sum, b.Add(sum, b.FToI(f)))
	}
	b.MovTo(sum, b.Add(sum, b.Ld(g.base, 8*int64(g.rng.Intn(fuzzWords)))))
	b.Ret(sum)
}

// intVar picks a live integer register.
func (g *progGen) intVar() isa.Reg { return g.vars[g.rng.Intn(len(g.vars))] }

// expr builds a small random integer expression.
func (g *progGen) expr() isa.Reg {
	b := g.b
	switch g.rng.Intn(8) {
	case 0:
		return b.Const(g.rng.Int63n(1000) - 500)
	case 1: // bounded load
		addr := b.Add(g.base, b.SllI(b.AndI(g.intVar(), fuzzWords-1), 3))
		return b.Ld(addr, 0)
	case 2:
		return b.Mul(g.intVar(), g.intVar())
	case 3:
		return b.Sub(g.intVar(), g.intVar())
	case 4:
		return b.Xor(g.intVar(), g.intVar())
	case 5: // safe division by a non-zero constant
		return b.DivI(g.intVar(), int64(g.rng.Intn(7))+1)
	case 6:
		return b.AndI(g.intVar(), int64(g.rng.Intn(255)+1))
	default:
		return b.Add(g.intVar(), g.intVar())
	}
}

// stmts emits n random statements into the current block.
func (g *progGen) stmts(n int) {
	for i := 0; i < n; i++ {
		g.stmt()
	}
}

func (g *progGen) stmt() {
	b := g.b
	switch g.rng.Intn(10) {
	case 0, 1: // new variable
		g.vars = append(g.vars, g.expr())
	case 2: // mutate existing
		b.MovTo(g.intVar(), g.expr())
	case 3: // bounded store
		addr := b.Add(g.base, b.SllI(b.AndI(g.intVar(), fuzzWords-1), 3))
		b.St(g.intVar(), addr, 0)
	case 4: // if/else on a comparison
		x, y := g.intVar(), g.intVar()
		ops := []isa.Op{isa.BEQ, isa.BNE, isa.BLT, isa.BGE}
		join := b.NewBlock()
		elseB := b.NewBlock()
		b.CondBr(ops[g.rng.Intn(len(ops))], x, y, elseB)
		b.Continue()
		// Variables created inside a branch are not definitely assigned
		// at the join: scope them (the IR contract requires every use to
		// be dominated by a definition — see package ir).
		mark, fmark := len(g.vars), len(g.fps)
		g.stmts(1 + g.rng.Intn(2))
		g.vars, g.fps = g.vars[:mark], g.fps[:fmark]
		b.Br(join)
		b.SetBlock(elseB)
		g.stmts(1 + g.rng.Intn(2))
		g.vars, g.fps = g.vars[:mark], g.fps[:fmark]
		b.Br(join)
		b.SetBlock(join)
	case 5: // counted loop with a fixed bound
		trips := int64(g.rng.Intn(12) + 1)
		cnt := b.Const(0)
		loop := b.NewBlock()
		b.Br(loop)
		b.SetBlock(loop)
		g.stmts(1 + g.rng.Intn(3))
		b.MovTo(cnt, b.AddI(cnt, 1))
		b.BltI(cnt, trips, loop)
		b.Continue()
	case 6: // call a generated function
		if len(g.fns) > 0 {
			name := g.fns[g.rng.Intn(len(g.fns))]
			callee := g.p.Func(name)
			args := make([]isa.Reg, len(callee.Params))
			for i := range args {
				args[i] = g.intVar()
			}
			g.vars = append(g.vars, b.Call(name, args...))
		} else {
			g.vars = append(g.vars, g.expr())
		}
	case 7: // floating point (dyadic-exact constants)
		if len(g.fps) > 0 {
			f := g.fps[g.rng.Intn(len(g.fps))]
			switch g.rng.Intn(3) {
			case 0:
				g.fps = append(g.fps, b.FAdd(f, b.FConst(0.25*float64(g.rng.Intn(16)))))
			case 1:
				g.fps = append(g.fps, b.FMul(f, b.FConst(0.5)))
			default:
				b.MovTo(f, b.FAdd(f, b.IToF(b.AndI(g.intVar(), 15))))
			}
		}
	case 8: // shift chain
		g.vars = append(g.vars, b.SraI(b.SllI(g.intVar(), int64(g.rng.Intn(8))), int64(g.rng.Intn(8))))
	default:
		g.vars = append(g.vars, g.expr())
	}
}

// fuzzArchs is the configuration set each random program is verified on:
// every registered backend (the non-RC contrasts, the port-reduction
// backend at a randomized read-port count plus its issue-rate default, and
// the chaining backend at two issue rates), every automatic-reset model
// with combining both on and off (each model × combine pairing has
// distinct connect placement and reset side effects), and a randomized
// wide-issue RC point. All points run the static map-state verifier in
// addition to the interpreter oracle.
func fuzzArchs(rng *rand.Rand) []Arch {
	models := []Model{ModelNoReset, ModelWriteReset, ModelWriteResetReadUpdate, ModelReadWriteReset}
	out := []Arch{
		{Issue: 1, LoadLatency: 2, IntCore: 8, FPCore: 16, Mode: WithoutRC},
		{Issue: 8, LoadLatency: 4, IntCore: 16, FPCore: 32, Mode: WithRC,
			Model:          models[rng.Intn(len(models))],
			ConnectLatency: rng.Intn(2), ExtraDecodeStage: rng.Intn(2) == 0},
		{Issue: 4, LoadLatency: 2, Mode: Unlimited},
		{Issue: 4, LoadLatency: 2, IntCore: 16, FPCore: 32, Mode: PortReduce,
			ReadPorts: 2 + rng.Intn(3)},
		{Issue: 8, LoadLatency: 4, IntCore: 16, FPCore: 32, Mode: PortReduce}, // ports = issue rate
		{Issue: 4, LoadLatency: 2, IntCore: 16, FPCore: 32, Mode: Chain},
		{Issue: 2, LoadLatency: 2, IntCore: 8, FPCore: 16, Mode: Chain},
	}
	for _, model := range models {
		for _, combine := range []bool{true, false} {
			issue := 4
			if !combine {
				issue = 2
			}
			out = append(out, Arch{Issue: issue, LoadLatency: 2, IntCore: 8, FPCore: 16,
				Mode: WithRC, Model: model, CombineConnects: combine})
		}
	}
	for i := range out {
		out[i].Verify = true
	}
	return out
}

// TestFuzzEndToEnd compiles many random programs under randomized
// architectures and verifies every one against the interpreter oracle.
// Each seed's program is generated exactly once and reused across every
// configuration — Build works on a private deep copy — and the test pins
// that property by asserting the input program is byte-identical after
// every build (regenerating per config used to paper over a mutation).
func TestFuzzEndToEnd(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 10
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			t.Parallel()
			p := genProgram(seed)
			if err := ir.Verify(p); err != nil {
				t.Fatalf("generated IR invalid: %v", err)
			}
			want := p.String()
			rng := rand.New(rand.NewSource(seed ^ 0x5eed))
			for ci, arch := range fuzzArchs(rng) {
				ex, err := Build(p, arch)
				if err != nil {
					t.Fatalf("config %d: build: %v", ci, err)
				}
				if got := p.String(); got != want {
					t.Fatalf("config %d (%+v): Build mutated its input program", ci, arch)
				}
				if _, err := ex.Verify(); err != nil {
					t.Fatalf("config %d (%+v): %v", ci, arch, err)
				}
			}
		})
	}
}
