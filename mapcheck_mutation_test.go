package regconn

import (
	"testing"

	"regconn/internal/codegen"
	"regconn/internal/isa"
	"regconn/internal/mapcheck"
)

// Mutation tests: compile a correct program, corrupt its machine code the
// way a compiler or scheduler bug would, and require the static verifier
// to reject the mutant at the exact instruction. NoSchedule keeps each
// connect adjacent to its consumer so the mutations are simple swaps.

func buildForMutation(t *testing.T) *Executable {
	t.Helper()
	ex, err := Build(buildPressureInt(), Arch{
		Issue: 4, IntCore: 16, FPCore: 32,
		Mode: WithRC, CombineConnects: true,
		NoSchedule: true, Verify: true,
	})
	if err != nil {
		t.Fatalf("clean build rejected: %v", err)
	}
	if vs := ex.MapCheck(); len(vs) != 0 {
		t.Fatalf("clean program flagged: %v", vs)
	}
	return ex
}

// findConnect returns the function and pc of the first connect matching
// pred, searching past the entry stub.
func findConnect(t *testing.T, mp *codegen.MProg, what string, pred func(*isa.Instr) bool) (*codegen.MFunc, int) {
	t.Helper()
	for _, f := range mp.Funcs {
		if f.Name == mp.Entry {
			continue
		}
		for pc := range f.Code {
			in := &f.Code[pc]
			if in.Op.Meta().Connect && pred(in) {
				return f, pc
			}
		}
	}
	t.Fatalf("test program contains no %s; pick a higher-pressure program", what)
	return nil, 0
}

// userOf returns the pc of the instruction consuming the connect at cpc
// (the first non-connect instruction after it).
func userOf(t *testing.T, f *codegen.MFunc, cpc int) int {
	t.Helper()
	for pc := cpc + 1; pc < len(f.Code); pc++ {
		if !f.Code[pc].Op.Meta().Connect {
			return pc
		}
	}
	t.Fatalf("%s+%d: connect has no consumer", f.Name, cpc)
	return 0
}

func requireViolationAt(t *testing.T, vs []mapcheck.Violation, fn string, pc int, rules ...string) {
	t.Helper()
	if len(vs) == 0 {
		t.Fatal("verifier accepted the mutant")
	}
	v := vs[0]
	if v.Func != fn || v.PC != pc {
		t.Fatalf("first violation at %s+%d, want %s+%d: %v", v.Func, v.PC, fn, pc, v)
	}
	for _, r := range rules {
		if v.Rule == r {
			return
		}
	}
	t.Fatalf("violation rule %s, want one of %v: %v", v.Rule, rules, v)
}

func TestMutationDropConnect(t *testing.T) {
	ex := buildForMutation(t)
	f, cpc := findConnect(t, ex.MProg, "single-pair connect-use", func(in *isa.Instr) bool {
		return in.Op == isa.CONUSE
	})
	upc := userOf(t, f, cpc)
	// Drop the connect (NOP keeps addresses stable): its consumer now
	// reads the window's stale resolution instead of the extended register.
	f.Code[cpc] = isa.Instr{Op: isa.NOP}
	requireViolationAt(t, ex.MapCheck(), f.Name, upc, mapcheck.RuleReadMap)
}

func TestMutationSwapConnectPairOrder(t *testing.T) {
	ex := buildForMutation(t)
	f, cpc := findConnect(t, ex.MProg, "combined def-use connect with distinct pairs", func(in *isa.Instr) bool {
		return in.Op == isa.CONDU &&
			(in.CIdx[0] != in.CIdx[1] || in.CPhys[0] != in.CPhys[1])
	})
	upc := userOf(t, f, cpc)
	// Swap the def and use pairs: the def now diverts the use's window on
	// the wrong map side and vice versa.
	in := &f.Code[cpc]
	in.CIdx[0], in.CIdx[1] = in.CIdx[1], in.CIdx[0]
	in.CPhys[0], in.CPhys[1] = in.CPhys[1], in.CPhys[0]
	requireViolationAt(t, ex.MapCheck(), f.Name, upc,
		mapcheck.RuleReadMap, mapcheck.RuleWriteMap)
}

func TestMutationHoistAboveConnect(t *testing.T) {
	ex := buildForMutation(t)
	// Find a connect-use whose consumer immediately follows it, and hoist
	// the consumer above the connect — the illegal scheduler move the
	// map-entry dependence edges exist to prevent.
	f, cpc := findConnect(t, ex.MProg, "connect-use with adjacent consumer", func(in *isa.Instr) bool {
		return in.Op == isa.CONUSE
	})
	upc := userOf(t, f, cpc)
	if upc != cpc+1 {
		t.Fatalf("consumer at %d not adjacent to connect at %d", upc, cpc)
	}
	f.Code[cpc], f.Code[upc] = f.Code[upc], f.Code[cpc]
	f.Ann[cpc], f.Ann[upc] = f.Ann[upc], f.Ann[cpc]
	// The consumer now executes before its connect and reads the stale
	// map; the violation lands at its new address.
	requireViolationAt(t, ex.MapCheck(), f.Name, cpc, mapcheck.RuleReadMap)
}

// buildForChainMutation compiles the pressure program under the chaining
// backend; the clean build must carry forwarding marks and verify.
func buildForChainMutation(t *testing.T) *Executable {
	t.Helper()
	ex, err := Build(buildPressureInt(), Arch{
		Issue: 4, IntCore: 16, FPCore: 32,
		Mode: Chain, NoSchedule: true, Verify: true,
	})
	if err != nil {
		t.Fatalf("clean chain build rejected: %v", err)
	}
	if vs := ex.MapCheck(); len(vs) != 0 {
		t.Fatalf("clean chain program flagged: %v", vs)
	}
	return ex
}

// findChainPair returns the function and producer pc of the first
// chain-forwarding pair, searching past the entry stub.
func findChainPair(t *testing.T, mp *codegen.MProg) (*codegen.MFunc, int) {
	t.Helper()
	for _, f := range mp.Funcs {
		if f.Name == mp.Entry {
			continue
		}
		for pc := range f.Ann {
			if f.Ann[pc].ChainOut {
				return f, pc
			}
		}
	}
	t.Fatal("test program contains no chain pairs; pick a higher-pressure program")
	return nil, 0
}

func TestMutationDropChainMark(t *testing.T) {
	ex := buildForChainMutation(t)
	f, ppc := findChainPair(t, ex.MProg)
	// Drop the producer's forwarding mark: the machine would now model a
	// register-file write the scheme's cost accounting claims was elided.
	// The code is untouched, so re-derivation expects the mark exactly
	// where it was dropped.
	f.Ann[ppc].ChainOut = false
	requireViolationAt(t, ex.MapCheck(), f.Name, ppc, mapcheck.RuleChain)
}

func TestMutationReorderChainMarks(t *testing.T) {
	ex := buildForChainMutation(t)
	f, ppc := findChainPair(t, ex.MProg)
	cpc := ppc + 1
	// Slide the pair's marks one instruction: the bug of a scheduler that
	// moves code without moving its annotations. The producer loses its
	// mark and the consumer's elided-read marks land on the producer.
	pa, ca := &f.Ann[ppc], &f.Ann[cpc]
	pa.ChainOut, ca.ChainOut = ca.ChainOut, pa.ChainOut
	pa.ChainA, ca.ChainA = ca.ChainA, pa.ChainA
	pa.ChainB, ca.ChainB = ca.ChainB, pa.ChainB
	requireViolationAt(t, ex.MapCheck(), f.Name, ppc, mapcheck.RuleChain)
}

func TestMutationReorderChainPair(t *testing.T) {
	ex := buildForChainMutation(t)
	f, ppc := findChainPair(t, ex.MProg)
	cpc := ppc + 1
	// Swap the producer and consumer outright (code and annotations): the
	// consumer now executes before the value it elides the read of exists.
	f.Code[ppc], f.Code[cpc] = f.Code[cpc], f.Code[ppc]
	f.Ann[ppc], f.Ann[cpc] = f.Ann[cpc], f.Ann[ppc]
	vs := ex.MapCheck()
	if len(vs) == 0 {
		t.Fatal("verifier accepted the reordered chain pair")
	}
	v := vs[0]
	if v.Rule != mapcheck.RuleChain {
		t.Fatalf("first violation rule %s, want %s: %v", v.Rule, mapcheck.RuleChain, v)
	}
	if v.Func != f.Name || (v.PC != ppc && v.PC != cpc) {
		t.Fatalf("first violation at %s+%d, want %s+%d or +%d: %v", v.Func, v.PC, f.Name, ppc, cpc, v)
	}
}
