package regconn

import (
	"fmt"
	"testing"

	"regconn/internal/bench"
)

// TestBenchmarksAllConfigs compiles and simulates every benchmark of the
// suite under representative configurations of each experiment axis and
// verifies the architectural results against the interpreter.
func TestBenchmarksAllConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark verification is not -short")
	}
	configs := []Arch{
		Baseline(),
		{Issue: 4, LoadLatency: 2, IntCore: 16, FPCore: 32, Mode: WithoutRC},
		{Issue: 4, LoadLatency: 2, IntCore: 16, FPCore: 32, Mode: WithRC, CombineConnects: true},
		{Issue: 4, LoadLatency: 2, IntCore: 8, FPCore: 16, Mode: WithRC, CombineConnects: true},
		{Issue: 8, LoadLatency: 4, IntCore: 24, FPCore: 48, Mode: WithRC, CombineConnects: true, ConnectLatency: 1, ExtraDecodeStage: true},
		{Issue: 4, LoadLatency: 2, IntCore: 64, FPCore: 128, Mode: Unlimited},
	}
	for i := range configs {
		configs[i].Verify = true
	}
	for _, bm := range bench.All() {
		bm := bm
		for ci, arch := range configs {
			arch := arch
			t.Run(fmt.Sprintf("%s/c%d-%v-m%d", bm.Name, ci, arch.Mode, arch.IntCore), func(t *testing.T) {
				t.Parallel()
				ex, err := Build(bm.Build(), arch)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				if ex.Golden.Ret != bm.Expect {
					t.Fatalf("golden = %d, want %d", ex.Golden.Ret, bm.Expect)
				}
				res, err := ex.Verify()
				if err != nil {
					t.Fatalf("verify: %v", err)
				}
				if res.RetInt != bm.Expect {
					t.Fatalf("machine = %d, want %d", res.RetInt, bm.Expect)
				}
			})
		}
	}
}
