package regconn

import (
	"fmt"
	"reflect"
	"testing"

	"regconn/internal/bench"
)

// TestBenchmarksAllConfigs compiles and simulates every benchmark of the
// suite under representative configurations of each experiment axis and
// verifies the architectural results against the interpreter.
func TestBenchmarksAllConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark verification is not -short")
	}
	configs := []Arch{
		Baseline(),
		{Issue: 4, LoadLatency: 2, IntCore: 16, FPCore: 32, Mode: WithoutRC},
		{Issue: 4, LoadLatency: 2, IntCore: 16, FPCore: 32, Mode: WithRC, CombineConnects: true},
		{Issue: 4, LoadLatency: 2, IntCore: 8, FPCore: 16, Mode: WithRC, CombineConnects: true},
		{Issue: 8, LoadLatency: 4, IntCore: 24, FPCore: 48, Mode: WithRC, CombineConnects: true, ConnectLatency: 1, ExtraDecodeStage: true},
		{Issue: 4, LoadLatency: 2, IntCore: 64, FPCore: 128, Mode: Unlimited},
	}
	for i := range configs {
		configs[i].Verify = true
	}
	for _, bm := range bench.All() {
		bm := bm
		for ci, arch := range configs {
			arch := arch
			t.Run(fmt.Sprintf("%s/c%d-%v-m%d", bm.Name, ci, arch.Mode, arch.IntCore), func(t *testing.T) {
				t.Parallel()
				ex, err := Build(bm.Build(), arch)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				if ex.Golden.Ret != bm.Expect {
					t.Fatalf("golden = %d, want %d", ex.Golden.Ret, bm.Expect)
				}
				res, err := ex.Verify()
				if err != nil {
					t.Fatalf("verify: %v", err)
				}
				if res.RetInt != bm.Expect {
					t.Fatalf("machine = %d, want %d", res.RetInt, bm.Expect)
				}
			})
		}
	}
}

// TestProfilingOffHasZeroFootprint proves the attribution layer is free
// when disabled and transparent when enabled: a profiling-off run carries
// no per-PC state at all (the hot loop sees only a nil check), and a
// profiling-on run of the same executable produces a bit-identical
// simulation — every observable Result field matches exactly.
func TestProfilingOffHasZeroFootprint(t *testing.T) {
	bm, err := bench.ByName("cmp")
	if err != nil {
		t.Fatal(err)
	}
	arch := Arch{Issue: 4, LoadLatency: 2, IntCore: 16, FPCore: 32,
		Mode: WithRC, CombineConnects: true, Verify: true}
	ex, err := Build(bm.Build(), arch)
	if err != nil {
		t.Fatal(err)
	}
	off, err := ex.Run()
	if err != nil {
		t.Fatal(err)
	}
	if off.Prof != nil {
		t.Fatal("profiling-off run allocated per-PC attribution")
	}
	ex.Arch.Profile = true
	on, err := ex.Run()
	if err != nil {
		t.Fatal(err)
	}
	if on.Prof == nil {
		t.Fatal("profiling-on run carries no per-PC attribution")
	}

	// Strip the fields that legitimately differ (the attribution itself
	// and the memory image pointers), then demand bit-identity.
	a, b := *off, *on
	a.Prof, b.Prof = nil, nil
	a.Mem, b.Mem = nil, nil
	if !reflect.DeepEqual(a, b) {
		t.Errorf("profiling perturbed the simulation:\n off %+v\n on  %+v", a, b)
	}
}

// benchmarkRun times one simulation of the cmp benchmark at the center
// configuration. Comparing the two variants (go test -bench Profiling
// -benchmem) quantifies the profiling overhead; with profiling off the
// per-cycle cost is one nil check and no allocation.
func benchmarkRun(b *testing.B, profile bool) {
	bm, err := bench.ByName("cmp")
	if err != nil {
		b.Fatal(err)
	}
	arch := Arch{Issue: 4, LoadLatency: 2, IntCore: 16, FPCore: 32,
		Mode: WithRC, CombineConnects: true, Profile: profile}
	ex, err := Build(bm.Build(), arch)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunProfilingOff(b *testing.B) { benchmarkRun(b, false) }
func BenchmarkRunProfilingOn(b *testing.B)  { benchmarkRun(b, true) }
