package regconn

import (
	"fmt"
	"testing"

	"regconn/internal/bench"
)

// TestBuildIsDeterministic compiles the same benchmark twice and requires
// byte-identical machine code — map-iteration nondeterminism anywhere in
// the pipeline would make every recorded experiment irreproducible.
func TestBuildIsDeterministic(t *testing.T) {
	for _, name := range []string{"espresso", "cpp", "matrix300"} {
		bm, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		arch := Arch{Issue: 4, LoadLatency: 2, IntCore: 16, FPCore: 32,
			Mode: WithRC, CombineConnects: true, Verify: true}
		render := func() string {
			ex, err := Build(bm.Build(), arch)
			if err != nil {
				t.Fatal(err)
			}
			out := ""
			for _, f := range ex.MProg.Funcs {
				out += f.Name + "\n"
				for i := range f.Code {
					out += fmt.Sprintf("%d %s\n", f.Code[i].Target, f.Code[i].String())
				}
			}
			return out
		}
		a, b := render(), render()
		if a != b {
			t.Errorf("%s: two builds differ", name)
		}
		// Cycle counts must agree as well.
		ex1, _ := Build(bm.Build(), arch)
		ex2, _ := Build(bm.Build(), arch)
		r1, err1 := ex1.Run()
		r2, err2 := ex2.Run()
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if r1.Cycles != r2.Cycles || r1.Instrs != r2.Instrs {
			t.Errorf("%s: runs differ: %d/%d vs %d/%d cycles/instrs",
				name, r1.Cycles, r1.Instrs, r2.Cycles, r2.Instrs)
		}
	}
}
