# Tier-1 verification and performance tracking for the regconn repo.

GO ?= go

.PHONY: all build test verify lint prof bench exp clean

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the tier-1 gate (see ROADMAP.md): build, vet, formatting,
# full tests (shuffled, to keep inter-test ordering dependencies out),
# the data-race checks on the parallel experiment runner, on the
# rcserve daemon (request coalescing, cache, cancellation, sharding),
# on the persistent result store (crash recovery) and on the
# observability layer (tracing, metrics registry), the CLI exit-code
# contract (scripts/exitcodes.sh), the metric-table cross-check
# (scripts/metricslint.sh), the static map-state verifier over the
# full benchmark × backend × model × combine grid (cmd/rclint, split
# into the paper's three backends and the extension backend matrix),
# the attribution profiler's ledger cross-check over the golden
# benchmark × config grid (cmd/rcprof), the arena zero-allocation
# gate (scripts/benchgate.sh), and the bounded scenario smoke
# (cmd/rcgen smoke: every workload profile × 3 seeds, each point
# interpreter-pinned, ledger-checked, and round-tripped through the
# trace format with a verified replay).
verify: build
	$(GO) vet ./...
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) test -shuffle=on ./...
	$(GO) test -race ./internal/exp/...
	$(GO) test -race ./internal/serve/...
	$(GO) test -race ./internal/store/...
	$(GO) test -race ./internal/obs/...
	sh scripts/exitcodes.sh
	sh scripts/metricslint.sh
	sh scripts/benchgate.sh
	$(GO) run ./cmd/rclint -backends rc,spill,unlimited
	$(GO) run ./cmd/rclint -backends portreduce,chain
	$(GO) run ./cmd/rcprof -grid
	$(GO) run ./cmd/rcgen smoke

# prof runs the attribution profiler over the golden benchmark × config
# grid, proving per-PC cycle charges sum bit-exactly to the cycle
# ledger of every point (a verify step; see DESIGN.md §10).
prof:
	$(GO) run ./cmd/rcprof -grid

# lint runs only the static map-state verifier sweep (a sub-step of
# verify, useful while iterating on codegen or the scheduler).
lint:
	$(GO) run ./cmd/rclint

# bench regenerates BENCH_sim.json, the tracked simulator performance
# snapshot (figure-regeneration time, warm-arena simulation throughput,
# steady-state allocation counts), then runs the in-repo microbenchmarks
# with -benchmem so per-op allocation figures land in the log.
bench:
	$(GO) run ./cmd/rcbench -o BENCH_sim.json
	$(GO) test -run '^$$' -bench 'ArenaResetRun|ArenaRun' -benchmem ./internal/machine .

# exp regenerates every table and figure on the full suite.
exp:
	$(GO) run ./cmd/rcexp

clean:
	$(GO) clean ./...
