package regconn

import (
	"bytes"
	"strings"
	"testing"
)

func TestDefaultMemChannels(t *testing.T) {
	cases := map[int]int{1: 2, 2: 2, 4: 2, 8: 4}
	for issue, want := range cases {
		if got := DefaultMemChannels(issue); got != want {
			t.Errorf("DefaultMemChannels(%d) = %d, want %d", issue, got, want)
		}
	}
}

func TestArchNormalize(t *testing.T) {
	a := Arch{Issue: 4}.normalize()
	if a.MemChannels != 2 || a.LoadLatency != 2 || a.IntCore != 64 || a.FPCore != 64 {
		t.Errorf("normalize defaults wrong: %+v", a)
	}
	if !a.Model.Valid() {
		t.Error("model not defaulted")
	}
	b := Arch{Issue: 8, MemChannels: 3, LoadLatency: 4, IntCore: 16, FPCore: 32}.normalize()
	if b.MemChannels != 3 || b.LoadLatency != 4 || b.IntCore != 16 {
		t.Errorf("normalize clobbered explicit values: %+v", b)
	}
}

func TestBaselineConfiguration(t *testing.T) {
	b := Baseline()
	if b.Issue != 1 || b.Mode != Unlimited || !b.ScalarOnly {
		t.Errorf("baseline = %+v", b)
	}
}

func TestModeStrings(t *testing.T) {
	for m, want := range map[RegMode]string{
		Unlimited: "unlimited", WithoutRC: "without-RC", WithRC: "with-RC",
	} {
		if m.String() != want {
			t.Errorf("%d = %q", m, m.String())
		}
	}
}

func TestBuildRejectsInvalidIR(t *testing.T) {
	p := NewProgram()
	b := NewFunc(p, "main", 0, 0)
	_ = b // no terminator: invalid
	if _, err := Build(p, Arch{Issue: 1}); err == nil {
		t.Fatal("expected verify error")
	}
}

func TestRunWithTrace(t *testing.T) {
	ex, err := Build(buildLoopSum(), Arch{Issue: 4, IntCore: 16, FPCore: 16, Mode: WithoutRC, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res, err := ex.RunWithTrace(&buf, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.RetInt != 4950 {
		t.Errorf("traced run result = %d", res.RetInt)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) == 0 || len(lines) > 10 {
		t.Errorf("trace lines = %d, want 1..10", len(lines))
	}
	if !strings.Contains(buf.String(), "call main") {
		t.Errorf("trace missing startup:\n%s", buf.String())
	}
}

func TestPublicAPISurface(t *testing.T) {
	// The aliases must expose a complete build-and-run path.
	if len(Benchmarks()) != 12 || len(IntegerBenchmarks()) != 9 || len(FPBenchmarks()) != 3 {
		t.Fatal("benchmark suite accessors wrong")
	}
	if _, err := BenchmarkByName("grep"); err != nil {
		t.Fatal(err)
	}
	tab := NewMapTable(ModelDefault, 8, 256)
	tab.ConnectUse(3, 100)
	if tab.ReadPhys(3) != 100 {
		t.Fatal("MapTable alias broken")
	}
	ctx := tab.SaveContext()
	tab.Reset()
	tab.RestoreContext(ctx)
	if tab.ReadPhys(3) != 100 {
		t.Fatal("MapContext alias broken")
	}
	p := NewProgram()
	b := NewFunc(p, "main", 0, 0)
	b.Ret(b.Const(9))
	if err := VerifyIR(p); err != nil {
		t.Fatal(err)
	}
	ex, err := Build(p, Arch{Issue: 1, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Verify()
	if err != nil || res.RetInt != 9 {
		t.Fatalf("res=%v err=%v", res, err)
	}
}

func TestTrapThroughFacade(t *testing.T) {
	arch := Arch{Issue: 4, IntCore: 16, FPCore: 16, Mode: WithRC, CombineConnects: true, Verify: true}
	arch.Trap = TrapConfig{Interval: 50, ContextSwitch: true, PSWFlag: true}
	ex, err := Build(buildLoopSum(), arch)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if res.Traps == 0 {
		t.Error("no context switches fired through the facade")
	}
}

func TestRunProcesses(t *testing.T) {
	arch := Arch{Issue: 4, IntCore: 8, FPCore: 16, Mode: WithRC, CombineConnects: true, Verify: true}
	var exes []*Executable
	for i := 0; i < 2; i++ {
		ex, err := Build(buildPressureInt(), arch)
		if err != nil {
			t.Fatal(err)
		}
		exes = append(exes, ex)
	}
	res, err := RunProcesses(exes, 200, FullSave)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.Results {
		if r.RetInt != 1395 {
			t.Errorf("process %d = %d, want 1395", i, r.RetInt)
		}
	}
	if res.Switches == 0 {
		t.Error("no context switches")
	}
	// Mixed architectures are rejected.
	other, err := Build(buildLoopSum(), Arch{Issue: 8, IntCore: 16, FPCore: 16, Mode: WithRC, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunProcesses([]*Executable{exes[0], other}, 200, FullSave); err == nil {
		t.Error("expected architecture-mismatch error")
	}
	if _, err := RunProcesses(nil, 200, FullSave); err == nil {
		t.Error("expected no-processes error")
	}
}

func TestWindowPolicyThroughFacade(t *testing.T) {
	for _, pol := range []WindowPolicy{WindowLRU, WindowRoundRobin, WindowFirstFree} {
		ex, err := Build(buildPressureInt(), Arch{Issue: 4, IntCore: 8, FPCore: 16,
			Mode: WithRC, CombineConnects: true, Windows: pol, Verify: true})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if _, err := ex.Verify(); err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
	}
}
