package regconn

import (
	"regconn/internal/bench"
	"regconn/internal/codegen"
	"regconn/internal/core"
	"regconn/internal/ir"
	"regconn/internal/isa"
	"regconn/internal/machine"
)

// TrapConfig configures periodic interrupts / context switches and the
// operating system's RC-state strategy (paper §4.2–4.3); see Arch.Trap.
type TrapConfig = machine.TrapConfig

// WindowPolicy selects how the code generator picks map entries for
// extended-register accesses (§3); see Arch.Windows.
type WindowPolicy = codegen.WindowPolicy

// Window policies.
const (
	WindowLRU        = codegen.WindowLRU
	WindowRoundRobin = codegen.WindowRoundRobin
	WindowFirstFree  = codegen.WindowFirstFree
)

// This file re-exports the library's user-facing building blocks so
// downstream code programs against the regconn package alone:
//
//   - the IR construction API (Program/Builder/Reg) for writing workloads,
//   - the register-connection hardware model (MapTable, the four models)
//     for direct architectural experimentation, and
//   - the benchmark suite used by the paper reproduction.

// Program is a compilation unit under construction (see NewProgram).
type Program = ir.Program

// Builder appends instructions to a function (see NewFunc).
type Builder = ir.Builder

// Block is a basic block handle used for control flow.
type Block = ir.Block

// Global is a named data object.
type Global = ir.Global

// Reg names a virtual register during program construction.
type Reg = isa.Reg

// NewProgram returns an empty program.
func NewProgram() *Program { return ir.NewProgram() }

// NewFunc creates a function with the given integer and floating-point
// parameter counts and returns a builder positioned at its entry block.
func NewFunc(p *Program, name string, intParams, fpParams int) *Builder {
	return ir.NewFunc(p, name, intParams, fpParams)
}

// VerifyIR checks a constructed program's structural invariants.
func VerifyIR(p *Program) error { return ir.Verify(p) }

// Model selects one of the four automatic register-connection models of
// paper §2.3.
type Model = core.Model

// The four automatic-reset models (paper §2.3, Figure 3). ModelDefault is
// the one the paper evaluates.
const (
	ModelNoReset              = core.NoReset
	ModelWriteReset           = core.WriteReset
	ModelWriteResetReadUpdate = core.WriteResetReadUpdate
	ModelReadWriteReset       = core.ReadWriteReset
	ModelDefault              = core.WriteResetReadUpdate
)

// MapTable is the register mapping table itself — the paper's primary
// architectural contribution — for standalone experimentation (context
// switching, trap handling, connect semantics).
type MapTable = core.MapTable

// MapContext is saved connection state for context switches (§4.2).
type MapContext = core.Context

// NewMapTable builds a mapping table with m addressable indices over n
// physical registers under the given reset model.
func NewMapTable(model Model, m, n int) *MapTable { return core.NewMapTable(model, m, n) }

// Benchmark is one workload of the reproduced evaluation suite.
type Benchmark = bench.Benchmark

// Benchmarks returns the paper's twelve-benchmark suite (nine integer,
// three floating-point stand-ins; see DESIGN.md §4).
func Benchmarks() []Benchmark { return bench.All() }

// IntegerBenchmarks and FPBenchmarks return the class subsets.
func IntegerBenchmarks() []Benchmark { return bench.Integer() }
func FPBenchmarks() []Benchmark      { return bench.FloatingPoint() }

// BenchmarkByName looks a benchmark up by name.
func BenchmarkByName(name string) (Benchmark, error) { return bench.ByName(name) }
