package regconn_test

import (
	"fmt"

	"regconn"
)

// ExampleBuild compiles a small reduction for an 8-register machine with
// RC support and verifies it against the interpreter oracle.
func ExampleBuild() {
	p := regconn.NewProgram()
	b := regconn.NewFunc(p, "main", 0, 0)
	sum := b.Const(0)
	i := b.Const(0)
	loop := b.NewBlock()
	b.Br(loop)
	b.SetBlock(loop)
	b.MovTo(sum, b.Add(sum, i))
	b.MovTo(i, b.AddI(i, 1))
	b.BltI(i, 10, loop)
	b.Continue()
	b.Ret(sum)

	ex, err := regconn.Build(p, regconn.Arch{
		Issue: 4, LoadLatency: 2, IntCore: 8, FPCore: 16,
		Mode: regconn.WithRC, CombineConnects: true,
		Verify: true, // statically check every map resolution (rclint)
	})
	if err != nil {
		panic(err)
	}
	res, err := ex.Verify()
	if err != nil {
		panic(err)
	}
	fmt.Println("result:", res.RetInt)
	// Output: result: 45
}

// ExampleNewMapTable walks the paper's Figure 2: connects redirect an
// add's operands without moving any data.
func ExampleNewMapTable() {
	tab := regconn.NewMapTable(regconn.ModelDefault, 4, 12)
	tab.ConnectUse(2, 10) // reads of r2 now reach physical register 10
	tab.ConnectUse(3, 7)
	tab.ConnectDef(1, 6) // writes to r1 now land in physical register 6
	fmt.Println("add r1, r2, r3 reads", tab.ReadPhys(2), tab.ReadPhys(3), "writes", tab.WritePhys(1))
	tab.NoteWrite(1) // model 3: the read map follows the written value
	fmt.Println("after the write, reads of r1 reach", tab.ReadPhys(1))
	// Output:
	// add r1, r2, r3 reads 10 7 writes 6
	// after the write, reads of r1 reach 6
}
