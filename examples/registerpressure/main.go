// Register-pressure sweep: the Figure 8 story on one benchmark. Compiles
// the espresso stand-in for core integer files of 8..64 registers, with
// and without RC support, and prints the speedup over the paper's baseline
// (1-issue, unlimited registers, scalar optimization) plus the code-size
// cost of each model.
//
//	go run ./examples/registerpressure [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"regconn"
)

func main() {
	name := "espresso"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	bm, err := regconn.BenchmarkByName(name)
	if err != nil {
		log.Fatal(err)
	}

	// Baseline denominator (§5.3).
	base, err := regconn.Build(bm.Build(), regconn.Baseline())
	if err != nil {
		log.Fatal(err)
	}
	baseRes, err := base.Verify()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: speedup and code growth vs core integer registers (4-issue, 2-cycle load)\n\n", bm.Name)
	fmt.Printf("%8s  %12s %12s  %12s %12s\n", "cores", "noRC-speedup", "RC-speedup", "noRC-growth", "RC-growth")
	for _, m := range []int{8, 16, 24, 32, 64} {
		var speed [2]float64
		var growth [2]float64
		for i, mode := range []regconn.RegMode{regconn.WithoutRC, regconn.WithRC} {
			ex, err := regconn.Build(bm.Build(), regconn.Arch{
				Issue: 4, LoadLatency: 2,
				IntCore: m, FPCore: 64,
				Mode: mode, CombineConnects: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			res, err := ex.Verify()
			if err != nil {
				log.Fatal(err)
			}
			speed[i] = float64(baseRes.Cycles) / float64(res.Cycles)
			growth[i] = ex.CodeGrowth() * 100
		}
		fmt.Printf("%8d  %12.2f %12.2f  %11.1f%% %11.1f%%\n", m, speed[0], speed[1], growth[0], growth[1])
	}

	unl, err := regconn.Build(bm.Build(), regconn.Arch{Issue: 4, LoadLatency: 2, Mode: regconn.Unlimited})
	if err != nil {
		log.Fatal(err)
	}
	unlRes, err := unl.Verify()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nunlimited-register reference: %.2fx\n", float64(baseRes.Cycles)/float64(unlRes.Cycles))
}
