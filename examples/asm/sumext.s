; sumext.s — hand-written Register Connection demo for cmd/rcasm.
;
; An 8-register machine sums a 12-element array into twelve separate
; extended-register partial sums (rp40..rp51), then folds them — more
; simultaneously live values than the core file can hold, with no memory
; spills: the connect instructions re-route the 8 architectural indices.
;
;   go run ./cmd/rcasm -intcore 8 examples/asm/sumext.s

.global arr 96
.init arr 0 1
.init arr 1 2
.init arr 2 3
.init arr 3 4
.init arr 4 5
.init arr 5 6
.init arr 6 7
.init arr 7 8
.init arr 8 9
.init arr 9 10
.init arr 10 11
.init arr 11 12

.func __start
    call main
    halt

.func main
    lga r3, arr+0

    ; Load each element into its own extended register via index r4:
    ; connect-def diverts the write, model 3 then re-points the read map.
    con_def ri4:rp40
    ld r4, 0(r3)
    con_def ri4:rp41
    ld r4, 8(r3)
    con_def ri4:rp42
    ld r4, 16(r3)
    con_def ri4:rp43
    ld r4, 24(r3)
    con_def ri4:rp44
    ld r4, 32(r3)
    con_def ri4:rp45
    ld r4, 40(r3)
    con_def ri4:rp46
    ld r4, 48(r3)
    con_def ri4:rp47
    ld r4, 56(r3)
    con_def ri4:rp48
    ld r4, 64(r3)
    con_def ri4:rp49
    ld r4, 72(r3)
    con_def ri4:rp50
    ld r4, 80(r3)
    con_def ri4:rp51
    ld r4, 88(r3)

    ; Fold: read each partial through index r5, accumulate in core r2.
    movi r2, #0
    con_use ri5:rp40
    add r2, r2, r5
    con_use ri5:rp41
    add r2, r2, r5
    con_use ri5:rp42
    add r2, r2, r5
    con_use ri5:rp43
    add r2, r2, r5
    con_use ri5:rp44
    add r2, r2, r5
    con_use ri5:rp45
    add r2, r2, r5
    con_use ri5:rp46
    add r2, r2, r5
    con_use ri5:rp47
    add r2, r2, r5
    con_use ri5:rp48
    add r2, r2, r5
    con_use ri5:rp49
    add r2, r2, r5
    con_use ri5:rp50
    add r2, r2, r5
    con_use ri5:rp51
    add r2, r2, r5
    ret                     ; r2 = 78
