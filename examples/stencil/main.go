// Stencil: a floating-point workload written against the public builder
// API — a red/black 1-D relaxation whose unrolled inner loop creates the
// FP register pressure the paper's Figure 8 (right side) measures. Sweeps
// the core floating-point file from 16 to 128 registers.
//
//	go run ./examples/stencil
package main

import (
	"fmt"
	"log"

	"regconn"
)

const cells = 2048

func buildStencil() *regconn.Program {
	p := regconn.NewProgram()
	grid := p.AddGlobal("grid", cells*8)
	vals := make([]float64, cells)
	for i := range vals {
		vals[i] = float64(i%31) * 0.125
	}
	grid.InitF = vals
	out := p.AddGlobal("out", 8)

	b := regconn.NewFunc(p, "main", 0, 0)
	gb := b.Addr(grid, 0)
	half := b.FConst(0.5)
	quarter := b.FConst(0.25)
	energy := b.FConst(0)

	sweep := b.Const(0)
	outer := b.NewBlock()
	b.Br(outer)
	b.SetBlock(outer)
	q := b.AddI(gb, 8)
	i := b.Const(1)
	inner := b.NewBlock()
	b.Br(inner)

	// x[i] = 0.25*x[i-1] + 0.5*x[i] + 0.25*x[i+1]; energy += x[i]*x[i].
	// Straight-line body: the compiler unrolls it into a superblock.
	b.SetBlock(inner)
	left := b.FLd(q, -8)
	mid := b.FLd(q, 0)
	right := b.FLd(q, 8)
	nv := b.FAdd(b.FAdd(b.FMul(quarter, left), b.FMul(half, mid)), b.FMul(quarter, right))
	b.FSt(nv, q, 0)
	b.MovTo(energy, b.FAdd(energy, b.FMul(nv, nv)))
	b.MovTo(q, b.AddI(q, 8))
	b.MovTo(i, b.AddI(i, 1))
	b.BltI(i, cells-1, inner)
	b.Continue()
	b.MovTo(sweep, b.AddI(sweep, 1))
	b.BltI(sweep, 4, outer)
	b.Continue()
	b.FSt(energy, b.Addr(out, 0), 0)
	b.Ret(b.FToI(energy))
	return p
}

func main() {
	if err := regconn.VerifyIR(buildStencil()); err != nil {
		log.Fatal(err)
	}
	base, err := regconn.Build(buildStencil(), regconn.Baseline())
	if err != nil {
		log.Fatal(err)
	}
	baseRes, err := base.Verify()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("1-D relaxation stencil: FP register file sweep (4-issue, 2-cycle load)")
	fmt.Printf("checksum %d, baseline %d cycles\n\n", baseRes.RetInt, baseRes.Cycles)
	fmt.Printf("%9s  %12s %12s %10s\n", "fp-cores", "noRC", "with-RC", "connects")
	for _, m := range []int{16, 32, 48, 64, 128} {
		var speed [2]float64
		var conns int64
		for k, mode := range []regconn.RegMode{regconn.WithoutRC, regconn.WithRC} {
			ex, err := regconn.Build(buildStencil(), regconn.Arch{
				Issue: 4, LoadLatency: 2,
				IntCore: 64, FPCore: m,
				Mode: mode, CombineConnects: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			res, err := ex.Verify()
			if err != nil {
				log.Fatal(err)
			}
			speed[k] = float64(baseRes.Cycles) / float64(res.Cycles)
			if mode == regconn.WithRC {
				conns = res.Connects
			}
		}
		fmt.Printf("%9d  %12.2f %12.2f %10d\n", m, speed[0], speed[1], conns)
	}
}
