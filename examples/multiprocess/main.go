// Multiprocess: makes paper §4.2 concrete. Three compiled programs
// time-share one physical register file. An RC-aware operating system
// (FullSave) context-switches core registers, extended registers, and the
// mapping table, and every process computes correctly; a pre-RC operating
// system (CoreOnlySave) switches only the core registers, and the
// RC-extended processes silently corrupt each other — the hazard the
// paper's process-status-word flag exists to prevent.
//
//	go run ./examples/multiprocess
package main

import (
	"fmt"
	"log"

	"regconn"
)

// buildWorker keeps `width` live values (pushed into extended registers on
// a small machine) while looping, then returns their sum times a tag.
func buildWorker(tag int64) *regconn.Program {
	p := regconn.NewProgram()
	g := p.AddGlobal("w", 16*8)
	vals := make([]int64, 16)
	for i := range vals {
		vals[i] = tag + int64(i)
	}
	g.InitI = vals
	b := regconn.NewFunc(p, "main", 0, 0)
	base := b.Addr(g, 0)
	var live []regconn.Reg
	for i := int64(0); i < 16; i++ {
		live = append(live, b.Ld(base, i*8))
	}
	i := b.Const(0)
	loop := b.NewBlock()
	b.Br(loop)
	b.SetBlock(loop)
	b.MovTo(i, b.AddI(i, 1))
	b.BltI(i, 400, loop)
	b.Continue()
	sum := b.Const(0)
	for _, v := range live {
		b.MovTo(sum, b.Add(sum, v))
	}
	b.Ret(sum)
	return p
}

func main() {
	arch := regconn.Arch{Issue: 4, LoadLatency: 2, IntCore: 8, FPCore: 16,
		Mode: regconn.WithRC, CombineConnects: true}
	var exes []*regconn.Executable
	var want []int64
	for _, tag := range []int64{1000, 5000, 9000} {
		ex, err := regconn.Build(buildWorker(tag), arch)
		if err != nil {
			log.Fatal(err)
		}
		exes = append(exes, ex)
		want = append(want, ex.Golden.Ret)
	}

	fmt.Println("Three RC processes sharing one register file, 300-cycle quantum")
	fmt.Println()
	full, err := regconn.RunProcesses(exes, 300, regconn.FullSave)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RC-aware OS (full save, %d switches, %d overhead cycles):\n",
		full.Switches, full.SwitchCycles)
	okAll := true
	for i, r := range full.Results {
		ok := r.RetInt == want[i]
		okAll = okAll && ok
		fmt.Printf("  process %d: got %-6d want %-6d correct=%v\n", i, r.RetInt, want[i], ok)
	}
	fmt.Println()

	// Rebuild (images are single-use memory-wise) and run under a pre-RC OS.
	exes = exes[:0]
	for _, tag := range []int64{1000, 5000, 9000} {
		ex, err := regconn.Build(buildWorker(tag), arch)
		if err != nil {
			log.Fatal(err)
		}
		exes = append(exes, ex)
	}
	coreOnly, err := regconn.RunProcesses(exes, 300, regconn.CoreOnlySave)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pre-RC OS (core-only save): extended state leaks between processes")
	for i, r := range coreOnly.Results {
		fmt.Printf("  process %d: got %-6d want %-6d correct=%v\n",
			i, r.RetInt, want[i], r.RetInt == want[i])
	}
	fmt.Println()
	if okAll {
		fmt.Println("=> saving extended registers + connection state (paper §4.2) is what")
		fmt.Println("   makes RC processes safe to multiprogram.")
	}
}
