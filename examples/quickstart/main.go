// Quickstart: build a small program with the IR builder, compile it for a
// machine with only 8 core integer registers, and watch Register
// Connection recover the performance that spilling loses.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"regconn"
)

// buildProgram creates main() that keeps sixteen loaded values live at
// once and folds them together — more simultaneously live values than an
// 8-register machine can hold.
func buildProgram() *regconn.Program {
	p := regconn.NewProgram()
	data := p.AddGlobal("data", 16*8)
	data.InitI = []int64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3}

	b := regconn.NewFunc(p, "main", 0, 0)
	base := b.Addr(data, 0)
	var vals []regconn.Reg
	for i := int64(0); i < 16; i++ {
		vals = append(vals, b.Ld(base, i*8))
	}
	// A little loop so the hot path dominates.
	sum := b.Const(0)
	iter := b.Const(0)
	loop := b.NewBlock()
	b.Br(loop)
	b.SetBlock(loop)
	for _, v := range vals {
		b.MovTo(sum, b.Add(sum, v))
	}
	b.MovTo(iter, b.AddI(iter, 1))
	b.BltI(iter, 1000, loop)
	b.Continue()
	b.Ret(sum)
	return p
}

func main() {
	fmt.Println("Register Connection quickstart: 16 live values, 8 core registers")
	fmt.Println()
	modes := []regconn.RegMode{regconn.WithoutRC, regconn.WithRC, regconn.Unlimited}
	var baseCycles int64
	for _, mode := range modes {
		ex, err := regconn.Build(buildProgram(), regconn.Arch{
			Issue:           4,
			LoadLatency:     2,
			IntCore:         8,
			FPCore:          16,
			Mode:            mode,
			CombineConnects: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := ex.Verify() // simulate + check against the interpreter
		if err != nil {
			log.Fatal(err)
		}
		if baseCycles == 0 {
			baseCycles = res.Cycles
		}
		fmt.Printf("%-12s %8d cycles   IPC %.2f   %6d spill memops   %6d connects   vs without-RC: %.2fx\n",
			mode, res.Cycles, res.IPC(), res.MemOps, res.Connects,
			float64(baseCycles)/float64(res.Cycles))
	}
	fmt.Println()
	fmt.Println("The with-RC model replaces spill loads/stores with zero-cycle")
	fmt.Println("connect instructions that re-map the 8 architectural register")
	fmt.Println("indices onto a 256-entry physical file (ISCA 1993, Kiyohara et al.)")
}
