// Connection walkthrough: drives the register mapping table — the paper's
// core mechanism — directly through the public API, reproducing Figure 2's
// code sequence, the model-3 automatic reset of §2.3, the CALL/RET reset
// of §4.1, the context-switch save/restore of §4.2, and the trap-handler
// map-enable flag of §4.3. No compiler or simulator involved: this is the
// architectural contract itself.
//
//	go run ./examples/connection
package main

import "fmt"

import "regconn"

func main() {
	// Four addressable registers, twelve physical: the Figure 2 setup.
	tab := regconn.NewMapTable(regconn.ModelDefault, 4, 12)
	fmt.Println("Figure 2: connect-use/def redirect an add's operands")
	fmt.Printf("  fresh table at home: reads r2 -> p%d, writes r1 -> p%d\n",
		tab.ReadPhys(2), tab.WritePhys(1))

	// connect_use Ri2,Rp10 ; connect_use Ri3,Rp7 ; connect_def Ri1,Rp6
	tab.ConnectUse(2, 10)
	tab.ConnectUse(3, 7)
	tab.ConnectDef(1, 6)
	fmt.Printf("  after connects: add r1, r2, r3 reads p%d and p%d, writes p%d\n",
		tab.ReadPhys(2), tab.ReadPhys(3), tab.WritePhys(1))

	// The write's automatic reset under model 3 (§2.3): the read map of
	// the destination follows the write, the write map returns home.
	tab.NoteWrite(1)
	fmt.Printf("  model-3 reset after the write: reads r1 -> p%d, writes r1 -> p%d\n\n",
		tab.ReadPhys(1), tab.WritePhys(1))

	// §3's example: a connect-use is NOT needed to read a value that was
	// just written through a connect-def.
	fmt.Println("§3: no connect-use needed after a connected write")
	tab.ConnectDef(3, 11)
	tab.NoteWrite(3)
	fmt.Printf("  write via r3 went to p11; subsequent reads of r3 reach p%d\n\n", tab.ReadPhys(3))

	// §4.1: subroutine linkage resets the table so binaries compiled for
	// the original architecture stay correct.
	fmt.Println("§4.1: CALL/RET reset the map (upward compatibility)")
	fmt.Printf("  before call: at home = %v\n", tab.AtHome())
	tab.Reset() // what the jsr/rts hardware does
	fmt.Printf("  after reset: at home = %v\n\n", tab.AtHome())

	// §4.2: context switches save and restore connection state.
	fmt.Println("§4.2: context switch")
	tab.ConnectUse(2, 9)
	ctx := tab.SaveContext()
	tab.Reset()
	other := regconn.NewMapTable(regconn.ModelDefault, 4, 12) // another process
	other.ConnectUse(2, 5)
	fmt.Printf("  process A saved (r2 -> p9); process B runs (r2 -> p%d)\n", other.ReadPhys(2))
	tab.RestoreContext(ctx)
	fmt.Printf("  process A restored: r2 -> p%d\n\n", tab.ReadPhys(2))

	// §4.3: traps bypass the map via the enable flag, so time-critical
	// device drivers need no connect bookkeeping.
	fmt.Println("§4.3: trap handlers disable the map")
	tab.SetEnabled(false)
	fmt.Printf("  trap entry: r2 reads core p%d directly\n", tab.ReadPhys(2))
	tab.SetEnabled(true)
	fmt.Printf("  return from exception: r2 -> p%d again\n", tab.ReadPhys(2))
}
