package regconn

import (
	"fmt"
	"testing"

	"regconn/internal/core"
	"regconn/internal/ir"
	"regconn/internal/isa"
)

// testPrograms returns named fresh-program builders exercising distinct
// compiler/machine paths: loops, calls, recursion, FP kernels, register
// pressure, memory traffic.
func testPrograms() map[string]func() *ir.Program {
	return map[string]func() *ir.Program{
		"loop-sum":     buildLoopSum,
		"calls-fib":    buildCallsFib,
		"array-kernel": buildArrayKernel,
		"fp-dot":       buildFPDot,
		"pressure-int": buildPressureInt,
	}
}

// expected results of the test programs (checked against the interpreter
// inside Build, and against these constants here).
var testExpect = map[string]int64{
	"loop-sum":     4950,
	"calls-fib":    144,
	"array-kernel": 6048,
	"fp-dot":       10912,
	"pressure-int": 1395,
}

func buildLoopSum() *ir.Program {
	p := ir.NewProgram()
	b := ir.NewFunc(p, "main", 0, 0)
	s := b.Const(0)
	i := b.Const(0)
	loop := b.NewBlock()
	b.Br(loop)
	b.SetBlock(loop)
	b.MovTo(s, b.Add(s, i))
	b.MovTo(i, b.AddI(i, 1))
	b.BltI(i, 100, loop)
	done := b.NewBlock()
	b.SetBlock(done)
	b.Ret(s)
	return p
}

func buildCallsFib() *ir.Program {
	p := ir.NewProgram()
	fb := ir.NewFunc(p, "fib", 1, 0)
	n := fb.Param(0)
	base := fb.NewBlock()
	rec := fb.NewBlock()
	fb.BgtI(n, 1, rec)
	fb.SetBlock(base)
	fb.Ret(n)
	fb.SetBlock(rec)
	a := fb.Call("fib", fb.SubI(n, 1))
	c := fb.Call("fib", fb.SubI(n, 2))
	fb.Ret(fb.Add(a, c))
	b := ir.NewFunc(p, "main", 0, 0)
	b.Ret(b.Call("fib", b.Const(12)))
	return p
}

func buildArrayKernel() *ir.Program {
	p := ir.NewProgram()
	g := p.AddGlobal("a", 64*8)
	res := p.AddGlobal("res", 8)
	b := ir.NewFunc(p, "main", 0, 0)
	base := b.Addr(g, 0)
	i := b.Const(0)
	ptr := b.Mov(base)
	init := b.NewBlock()
	b.Br(init)
	b.SetBlock(init)
	b.St(b.MulI(i, 3), ptr, 0)
	b.MovTo(ptr, b.AddI(ptr, 8))
	b.MovTo(i, b.AddI(i, 1))
	b.BltI(i, 64, init)
	mid := b.NewBlock()
	b.SetBlock(mid)
	a0, a1, a2, a3 := b.Const(0), b.Const(0), b.Const(0), b.Const(0)
	j := b.Const(0)
	q := b.Mov(base)
	loop := b.NewBlock()
	b.Br(loop)
	b.SetBlock(loop)
	v0 := b.Ld(q, 0)
	v1 := b.Ld(q, 8)
	v2 := b.Ld(q, 16)
	v3 := b.Ld(q, 24)
	b.MovTo(a0, b.Add(a0, v0))
	b.MovTo(a1, b.Add(a1, v1))
	b.MovTo(a2, b.Add(a2, v2))
	b.MovTo(a3, b.Add(a3, v3))
	b.MovTo(q, b.AddI(q, 32))
	b.MovTo(j, b.AddI(j, 4))
	b.BltI(j, 64, loop)
	out := b.NewBlock()
	b.SetBlock(out)
	t := b.Add(b.Add(a0, a1), b.Add(a2, a3))
	b.St(t, b.Addr(res, 0), 0)
	b.Ret(t)
	return p
}

func buildFPDot() *ir.Program {
	p := ir.NewProgram()
	x := p.AddGlobal("x", 32*8)
	y := p.AddGlobal("y", 32*8)
	b := ir.NewFunc(p, "main", 0, 0)
	i := b.Const(0)
	px := b.Addr(x, 0)
	py := b.Addr(y, 0)
	init := b.NewBlock()
	b.Br(init)
	b.SetBlock(init)
	fi := b.IToF(i)
	b.FSt(fi, px, 0)
	b.FSt(b.FAdd(fi, b.FConst(1)), py, 0)
	b.MovTo(px, b.AddI(px, 8))
	b.MovTo(py, b.AddI(py, 8))
	b.MovTo(i, b.AddI(i, 1))
	b.BltI(i, 32, init)
	mid := b.NewBlock()
	b.SetBlock(mid)
	acc := b.FConst(0)
	j := b.Const(0)
	qx := b.Addr(x, 0)
	qy := b.Addr(y, 0)
	loop := b.NewBlock()
	b.Br(loop)
	b.SetBlock(loop)
	vx := b.FLd(qx, 0)
	vy := b.FLd(qy, 0)
	b.MovTo(acc, b.FAdd(acc, b.FMul(vx, vy)))
	b.MovTo(qx, b.AddI(qx, 8))
	b.MovTo(qy, b.AddI(qy, 8))
	b.MovTo(j, b.AddI(j, 1))
	b.BltI(j, 32, loop)
	out := b.NewBlock()
	b.SetBlock(out)
	b.Ret(b.FToI(acc))
	return p
}

func buildPressureInt() *ir.Program {
	// Twenty simultaneously live loaded values across a call: stresses
	// spilling, callee-save allocation, and extended save/restore.
	// (Values come from memory so classical optimization cannot fold them
	// into immediates.)
	p := ir.NewProgram()
	g := p.AddGlobal("arr", 32*8)
	id := ir.NewFunc(p, "id", 1, 0)
	id.Ret(id.Param(0))
	b := ir.NewFunc(p, "main", 0, 0)
	base := b.Addr(g, 0)
	i := b.Const(0)
	q := b.Mov(base)
	init := b.NewBlock()
	b.Br(init)
	b.SetBlock(init)
	b.St(b.AddI(b.MulI(i, 7), 3), q, 0)
	b.MovTo(q, b.AddI(q, 8))
	b.MovTo(i, b.AddI(i, 1))
	b.BltI(i, 32, init)
	body := b.NewBlock()
	b.SetBlock(body)
	var lv []isa.Reg
	for k := int64(0); k < 20; k++ {
		lv = append(lv, b.Ld(base, k*8))
	}
	acc := b.Mov(b.Call("id", b.Const(5)))
	for _, r := range lv {
		b.MovTo(acc, b.Add(acc, r))
	}
	b.Ret(acc) // 5 + sum_{k<20}(7k+3) = 5 + 1330 + 60 = 1395
	return p
}

// archMatrix returns the architecture grid every test program is verified
// on: every register backend, small and large cores, all four RC models,
// issue rates, connect latencies, and the extra decode stage.
func archMatrix() []Arch {
	var out []Arch
	for _, mode := range []RegMode{Unlimited, WithoutRC, WithRC} {
		for _, m := range []int{8, 16, 64} {
			for _, issue := range []int{1, 4} {
				out = append(out, Arch{
					Issue: issue, LoadLatency: 2,
					IntCore: m, FPCore: maxInt(m, 16),
					Mode: mode, CombineConnects: true,
				})
			}
		}
	}
	// RC implementation scenarios (Figure 12) and models (§2.3).
	for _, model := range []core.Model{core.NoReset, core.WriteReset, core.WriteResetReadUpdate, core.ReadWriteReset} {
		out = append(out, Arch{
			Issue: 4, LoadLatency: 2, IntCore: 16, FPCore: 32,
			Mode: WithRC, Model: model, CombineConnects: true,
		})
	}
	out = append(out,
		Arch{Issue: 4, LoadLatency: 4, IntCore: 16, FPCore: 32, Mode: WithRC, ConnectLatency: 1, CombineConnects: true},
		Arch{Issue: 4, LoadLatency: 2, IntCore: 16, FPCore: 32, Mode: WithRC, ExtraDecodeStage: true, CombineConnects: true},
		Arch{Issue: 4, LoadLatency: 2, IntCore: 16, FPCore: 32, Mode: WithRC}, // single connects
		Arch{Issue: 8, LoadLatency: 2, IntCore: 16, FPCore: 32, Mode: WithRC, CombineConnects: true},
		Arch{Issue: 4, LoadLatency: 2, IntCore: 16, FPCore: 32, Mode: WithRC, CombineConnects: true, NoSchedule: true},
		Arch{Issue: 1, LoadLatency: 2, IntCore: 8, FPCore: 16, Mode: WithoutRC, ScalarOnly: true},
	)
	// Extension backends: the reduced-read-port file at both widths, and
	// chaining with and without the scheduler (MarkChains runs either way).
	out = append(out,
		Arch{Issue: 4, LoadLatency: 2, IntCore: 16, FPCore: 32, Mode: PortReduce},
		Arch{Issue: 4, LoadLatency: 2, IntCore: 16, FPCore: 32, Mode: PortReduce, ReadPorts: 2},
		Arch{Issue: 4, LoadLatency: 2, IntCore: 16, FPCore: 32, Mode: Chain},
		Arch{Issue: 4, LoadLatency: 2, IntCore: 16, FPCore: 32, Mode: Chain, NoSchedule: true},
	)
	for i := range out {
		out[i].Verify = true
	}
	return out
}

// TestEndToEnd compiles every test program under every architecture in the
// matrix and verifies the machine result and memory image against the IR
// interpreter.
func TestEndToEnd(t *testing.T) {
	for name, build := range testPrograms() {
		for i, arch := range archMatrix() {
			arch := arch
			t.Run(fmt.Sprintf("%s/%02d-%v-m%d-i%d", name, i, arch.Mode, arch.IntCore, arch.Issue), func(t *testing.T) {
				ex, err := Build(build(), arch)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				if ex.Golden.Ret != testExpect[name] {
					t.Fatalf("interpreter golden = %d, want %d", ex.Golden.Ret, testExpect[name])
				}
				res, err := ex.Verify()
				if err != nil {
					t.Fatalf("verify: %v", err)
				}
				if res.Cycles <= 0 || res.Instrs <= 0 {
					t.Fatalf("degenerate result: %+v", res)
				}
			})
		}
	}
}

// TestRCBeatsSpillUnderPressure checks the paper's core claim on a small
// machine: with few core registers, the with-RC model runs in fewer cycles
// than the without-RC model and close to the unlimited model.
func TestRCBeatsSpillUnderPressure(t *testing.T) {
	run := func(mode RegMode) *machineResult {
		arch := Arch{Issue: 4, LoadLatency: 2, IntCore: 8, FPCore: 16, Mode: mode, CombineConnects: true, Verify: true}
		ex, err := Build(buildPressureInt(), arch)
		if err != nil {
			t.Fatalf("build %v: %v", mode, err)
		}
		res, err := ex.Verify()
		if err != nil {
			t.Fatalf("verify %v: %v", mode, err)
		}
		return &machineResult{res.Cycles, res.Instrs}
	}
	unl := run(Unlimited)
	rc := run(WithRC)
	spill := run(WithoutRC)
	t.Logf("cycles: unlimited=%d with-RC=%d without-RC=%d", unl.cycles, rc.cycles, spill.cycles)
	if rc.cycles >= spill.cycles {
		t.Errorf("with-RC (%d cycles) should beat without-RC (%d cycles) at 8 core registers",
			rc.cycles, spill.cycles)
	}
	// Unlimited is the idealized lower bound, modulo small scheduling
	// noise on tiny programs; allow 5% slack.
	if float64(unl.cycles) > 1.05*float64(rc.cycles) {
		t.Errorf("unlimited (%d) should not be materially slower than RC (%d)", unl.cycles, rc.cycles)
	}
}

type machineResult struct{ cycles, instrs int64 }

// TestConnectsOnlyWithRC checks that connect instructions appear exactly in
// with-RC builds that use extended registers.
func TestConnectsOnlyWithRC(t *testing.T) {
	for _, mode := range []RegMode{Unlimited, WithoutRC} {
		ex, err := Build(buildPressureInt(), Arch{Issue: 4, IntCore: 8, FPCore: 16, Mode: mode, Verify: true})
		if err != nil {
			t.Fatal(err)
		}
		if ex.ConnectInstrs != 0 {
			t.Errorf("%v build has %d connects", mode, ex.ConnectInstrs)
		}
	}
	ex, err := Build(buildPressureInt(), Arch{Issue: 4, IntCore: 8, FPCore: 16, Mode: WithRC, CombineConnects: true, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if ex.ConnectInstrs == 0 {
		t.Error("with-RC build under pressure has no connects")
	}
	if ex.SpillInstrs != 0 {
		t.Errorf("with-RC build should not spill here, got %d spill ops", ex.SpillInstrs)
	}
}

// TestCodeGrowth checks the Figure 9 accounting: without-RC code growth
// comes from spills, with-RC growth from connects plus save/restore.
func TestCodeGrowth(t *testing.T) {
	spill, err := Build(buildPressureInt(), Arch{Issue: 4, IntCore: 8, FPCore: 16, Mode: WithoutRC, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if spill.SpillInstrs == 0 {
		t.Error("without-RC at 8 registers must spill")
	}
	if spill.CodeGrowth() <= 0 {
		t.Errorf("without-RC growth = %v", spill.CodeGrowth())
	}
	rc, err := Build(buildPressureInt(), Arch{Issue: 4, IntCore: 8, FPCore: 16, Mode: WithRC, CombineConnects: true, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if rc.SaveRestoreExts == 0 {
		t.Error("pressure across a call must trigger extended save/restore")
	}
	if g := rc.CodeGrowth(); g <= 0 {
		t.Errorf("with-RC growth = %v", g)
	}
}
